"""Real-socket transport: seeded delivery over asyncio TCP conveyance.

:class:`RealNetwork` is the deployable twin of
:class:`~repro.network.simnet.SyncNetwork`.  It keeps the simulator's
*seeded logical delivery schedule* byte for byte — the same RNG draws
produce the same latency stamps, the same FIFO fronts, the same total
order — and adds **physical conveyance**: every admitted message copy is
framed (length-prefixed, CRC-checked, the storage segment-log header
reused verbatim) and shipped over a real TCP connection to the custodian
peer process hosting the receiver, which validates the frame and
acknowledges it.  Logical delivery of a message is gated on the physical
acknowledgement of its frame: :meth:`RealNetwork.run_until` refuses to
execute a delivery event whose frame has not yet made the wire round
trip, so protocol progress is *physically mediated* — a dead custodian
stalls exactly the deliveries it custodies, until reconnection or the
structured give-up.

Why this shape: the engines' determinism contract (bit-identical seeded
ledgers — the property every audit and cross-backend test leans on) is a
statement about *which* messages arrive in *what order*, and real socket
timing can never reproduce it.  So the schedule stays seeded and the
sockets carry the bytes: `NetworkedProtocolEngine`, `ReliableChannel`
and the broadcast layer run unmodified over either backend, chaos plans
injected at the logical layer (:class:`~repro.faults.FaultInjector`)
behave identically on both, and *physical* faults (dropped frames, dead
peers, partitions — see :class:`repro.faults.proxy.TransportFaultProxy`)
exercise the robustness machinery below without being able to corrupt
the committed history, only to delay or abort it.

The robustness machinery, per peer connection:

* bounded **exponential backoff with jitter** on connect and reconnect;
* per-frame **send deadlines** — an unacknowledged frame is
  retransmitted after ``send_deadline`` seconds, up to ``max_retries``;
* a **liveness watchdog** — heartbeat pings every
  ``heartbeat_interval``; ``heartbeat_budget`` consecutive misses mark
  the peer *suspect* and recycle the connection (outstanding frames are
  buffered and retried on the next session);
* a structured :class:`~repro.exceptions.PeerUnreachableError` once the
  retry/backoff budgets are exhausted or the conveyance watchdog sees no
  progress at all — the transport degrades to an error, never a hang.

Everything socket-side runs on a dedicated asyncio loop in a background
thread; the simulator thread talks to it only through
``call_soon_threadsafe`` and a condition variable, and none of it ever
touches the seeded RNG streams (jitter has its own wall-clock-only
generator), so enabling the real transport cannot perturb a seeded run.
"""

from __future__ import annotations

import asyncio
import heapq
import pickle
import random
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any

from repro.exceptions import (
    ConfigurationError,
    FrameError,
    PeerUnreachableError,
    SimulationError,
)
from repro.network.simnet import Message, Simulator, SyncNetwork
from repro.obs.registry import MetricsRegistry

__all__ = [
    "FRAME_HEADER",
    "MAX_FRAME_PAYLOAD",
    "FrameReader",
    "NodeServer",
    "RealNetwork",
    "TransportConfig",
    "encode_frame",
    "transport_metrics",
]

# -- wire framing -----------------------------------------------------------

#: Same header as the storage segment log: u32 payload length | u32 crc32
#: of the payload | u64 sequence number.  One codec for disk and wire.
FRAME_HEADER = struct.Struct("<IIQ")

#: Refuse absurd lengths before allocating (matches the segment log).
MAX_FRAME_PAYLOAD = 1 << 26

#: Frame kinds — first payload byte.  ``MSG`` carries a pickled
#: (sender, receiver, payload) triple; the control frames carry nothing.
KIND_MSG = b"M"
KIND_ACK = b"A"
KIND_PING = b"P"
KIND_PONG = b"O"


def encode_frame(seq: int, kind: bytes, body: bytes = b"") -> bytes:
    """One wire frame: header + kind byte + body, CRC over kind+body."""
    payload = kind + body
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise FrameError(
            f"frame payload {len(payload)} exceeds cap {MAX_FRAME_PAYLOAD}"
        )
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload), seq) + payload


class FrameReader:
    """Incremental frame decoder over a byte stream.

    Feed it chunks as they arrive; it yields complete ``(seq, kind,
    body)`` frames and raises :class:`~repro.exceptions.FrameError` on a
    malformed header, an oversized length, or a CRC mismatch — the
    caller then drops the connection (TCP preserves ordering, so a bad
    frame means a corrupted or hostile stream, not a resumable gap).
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes, bytes]]:
        self._buf.extend(data)
        frames: list[tuple[int, bytes, bytes]] = []
        while True:
            if len(self._buf) < FRAME_HEADER.size:
                return frames
            length, crc, seq = FRAME_HEADER.unpack_from(self._buf)
            if length == 0 or length > MAX_FRAME_PAYLOAD:
                raise FrameError(f"frame length {length} out of range")
            end = FRAME_HEADER.size + length
            if len(self._buf) < end:
                return frames
            payload = bytes(self._buf[FRAME_HEADER.size:end])
            del self._buf[:end]
            if zlib.crc32(payload) != crc:
                raise FrameError(f"frame {seq} CRC mismatch")
            frames.append((seq, payload[:1], payload[1:]))


# -- telemetry --------------------------------------------------------------


def transport_metrics(obs: MetricsRegistry) -> dict[str, object]:
    """Fetch-or-register the ``tpt_*`` metric family on ``obs``."""
    return {
        "frames": obs.counter(
            "tpt_frames_total",
            "Wire frames moved by the transport, by direction",
            labels=("direction",),
        ),
        "bytes": obs.counter(
            "tpt_bytes_total",
            "Wire bytes moved by the transport, by direction",
            labels=("direction",),
        ),
        "reconnects": obs.counter(
            "tpt_reconnects_total",
            "Successful peer re-connections after a lost session, by peer",
            labels=("peer",),
        ),
        "backoff_sleeps": obs.counter(
            "tpt_backoff_sleeps_total",
            "Exponential-backoff sleeps taken before (re)connect attempts",
        ),
        "deadline_expiries": obs.counter(
            "tpt_send_deadline_expiries_total",
            "Frames whose acknowledgement missed the send deadline",
        ),
        "retransmits": obs.counter(
            "tpt_retransmits_total",
            "Frame retransmissions (deadline expiry or session recycle)",
        ),
        "heartbeat_misses": obs.counter(
            "tpt_heartbeat_misses_total",
            "Heartbeat intervals that elapsed without a pong, by peer",
            labels=("peer",),
        ),
        "suspects": obs.counter(
            "tpt_suspect_transitions_total",
            "Peers marked suspect after exhausting the heartbeat budget",
        ),
        "crc_errors": obs.counter(
            "tpt_crc_errors_total",
            "Frames rejected for CRC or structural errors",
        ),
    }


# -- configuration ----------------------------------------------------------


@dataclass(frozen=True)
class TransportConfig:
    """Knobs of the robustness machinery (all wall-clock seconds)."""

    #: TCP connect attempt timeout.
    connect_timeout: float = 2.0
    #: Consecutive failed connect attempts before the peer is declared
    #: unreachable (each attempt is preceded by a backoff sleep).
    connect_attempts: int = 8
    #: First backoff sleep; doubles per consecutive failure.
    backoff_base: float = 0.05
    #: Backoff ceiling.
    backoff_max: float = 2.0
    #: Multiplicative jitter: sleep *= 1 + uniform(0, jitter).
    backoff_jitter: float = 0.25
    #: Unacknowledged-frame retransmission deadline.
    send_deadline: float = 1.0
    #: How often the writer scans for expired deadlines.
    deadline_poll: float = 0.1
    #: Retransmissions per frame before giving up on the peer.
    max_retries: int = 8
    #: Heartbeat ping period.
    heartbeat_interval: float = 0.5
    #: Consecutive missed heartbeats before the peer is marked suspect
    #: and the session is recycled.
    heartbeat_budget: int = 3
    #: Sessions shorter than this count as failed connect attempts —
    #: a peer that accepts and instantly drops (partition window, dying
    #: process) must ride the backoff curve, not a reconnect spin.
    session_floor: float = 0.05
    #: Conveyance watchdog: if no acknowledgement arrives for this long
    #: while deliveries are gated, the driver raises instead of hanging.
    stall_timeout: float = 20.0
    #: Jitter RNG seed — wall-clock side only, never the sim streams.
    jitter_seed: int = 0


class _Pending:
    """One conveyed frame awaiting acknowledgement."""

    __slots__ = ("frame", "attempts", "sent_at")

    def __init__(self, frame: bytes):
        self.frame = frame
        self.attempts = 0
        self.sent_at = 0.0


class _PeerSupervisor:
    """Owns the connection to one custodian peer (loop thread only).

    Lifecycle: connect (with bounded backoff+jitter) → run a session
    (writer drains the queue and polices send deadlines, reader collects
    acks/pongs, heartbeat polices liveness) → on any session failure,
    recycle: unacknowledged frames go back on the queue and the connect
    loop runs again.  Budget exhaustion escalates to the network as a
    :class:`PeerUnreachableError`.
    """

    def __init__(self, network: "RealNetwork", name: str, host: str, port: int):
        self.network = network
        self.name = name
        self.host = host
        self.port = port
        self.cfg = network.config
        self.metrics = network.metrics
        self._rng = random.Random(
            (self.cfg.jitter_seed << 16) ^ zlib.crc32(name.encode())
        )
        self._unacked: dict[int, _Pending] = {}
        self._queue: list[int] = []
        self._control: list[bytes] = []
        self._wake = asyncio.Event()
        self._sessions = 0
        self.suspect = False
        self._misses = 0
        self._closing = False

    # -- driver-facing (via call_soon_threadsafe) ------------------------

    def submit(self, seq: int, frame: bytes) -> None:
        self._unacked[seq] = _Pending(frame)
        self._queue.append(seq)
        self._wake.set()

    def shutdown(self) -> None:
        self._closing = True
        self._wake.set()

    # -- connect / reconnect loop ----------------------------------------

    async def run(self) -> None:
        attempt = 0
        while not self._closing:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    timeout=self.cfg.connect_timeout,
                )
            except asyncio.CancelledError:
                return
            except Exception as exc:
                attempt += 1
                if attempt >= self.cfg.connect_attempts:
                    self.network._fail(
                        PeerUnreachableError(
                            self.name,
                            f"connect backoff budget exhausted: {exc}",
                            attempts=attempt,
                        )
                    )
                    return
                await self._backoff(attempt)
                continue
            if self._sessions > 0:
                self.metrics["reconnects"].labels(peer=self.name).inc()
            self._sessions += 1
            attempt = 0
            if self.suspect:
                self.suspect = False
            self._misses = 0
            # Everything unacknowledged rides again on the new session.
            requeued = sorted(set(self._unacked) - set(self._queue))
            if requeued:
                self.metrics["retransmits"].inc(len(requeued))
            self._queue = sorted(set(self._queue) | set(requeued))
            self._wake.set()
            started = time.monotonic()
            try:
                await self._session(reader, writer)
            except asyncio.CancelledError:
                writer.close()
                return
            finally:
                writer.close()
            if time.monotonic() - started < self.cfg.session_floor:
                # Accepted then instantly dropped: treat like a failed
                # connect so a dark window cannot induce a busy loop.
                attempt += 1
                if attempt >= self.cfg.connect_attempts:
                    self.network._fail(
                        PeerUnreachableError(
                            self.name,
                            "sessions dying instantly; reconnect backoff "
                            "budget exhausted",
                            attempts=attempt,
                        )
                    )
                    return
                await self._backoff(attempt)

    async def _backoff(self, attempt: int) -> None:
        sleep = min(
            self.cfg.backoff_base * (2 ** (attempt - 1)), self.cfg.backoff_max
        )
        sleep *= 1.0 + self._rng.uniform(0.0, self.cfg.backoff_jitter)
        self.metrics["backoff_sleeps"].inc()
        try:
            await asyncio.sleep(sleep)
        except asyncio.CancelledError:
            raise

    async def _session(self, reader, writer) -> None:
        tasks = [
            asyncio.ensure_future(self._read_loop(reader)),
            asyncio.ensure_future(self._write_loop(writer)),
            asyncio.ensure_future(self._heartbeat_loop()),
        ]
        try:
            done, pending = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- session sub-loops ------------------------------------------------

    async def _write_loop(self, writer) -> None:
        while not self._closing:
            while self._control:
                frame = self._control.pop(0)
                writer.write(frame)
                self.metrics["frames"].labels(direction="out").inc()
                self.metrics["bytes"].labels(direction="out").inc(len(frame))
            while self._queue:
                seq = self._queue.pop(0)
                pending = self._unacked.get(seq)
                if pending is None:  # acked while queued
                    continue
                pending.attempts += 1
                pending.sent_at = time.monotonic()
                writer.write(pending.frame)
                self.metrics["frames"].labels(direction="out").inc()
                self.metrics["bytes"].labels(direction="out").inc(
                    len(pending.frame)
                )
            await writer.drain()
            self._wake.clear()
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=self.cfg.deadline_poll
                )
            except asyncio.TimeoutError:
                pass
            self._police_deadlines()

    def _police_deadlines(self) -> None:
        now = time.monotonic()
        queued = set(self._queue)
        for seq, pending in self._unacked.items():
            if seq in queued or pending.sent_at == 0.0:
                continue
            if now - pending.sent_at < self.cfg.send_deadline:
                continue
            self.metrics["deadline_expiries"].inc()
            if pending.attempts > self.cfg.max_retries:
                self.network._fail(
                    PeerUnreachableError(
                        self.name,
                        f"frame {seq} unacknowledged after "
                        f"{pending.attempts} transmissions",
                        attempts=pending.attempts,
                    )
                )
                return
            self.metrics["retransmits"].inc()
            self._queue.append(seq)
            queued.add(seq)
        if self._queue:
            self._wake.set()

    async def _read_loop(self, reader) -> None:
        frames = FrameReader()
        while True:
            data = await reader.read(65536)
            if not data:
                return  # peer closed; outer loop reconnects
            self.metrics["bytes"].labels(direction="in").inc(len(data))
            try:
                decoded = frames.feed(data)
            except FrameError:
                self.metrics["crc_errors"].inc()
                return  # corrupted stream: recycle the session
            for seq, kind, _body in decoded:
                self.metrics["frames"].labels(direction="in").inc()
                if kind == KIND_ACK:
                    if self._unacked.pop(seq, None) is not None:
                        self.network._acked(seq)
                elif kind == KIND_PONG:
                    self._misses = 0

    async def _heartbeat_loop(self) -> None:
        seq = 0
        while True:
            await asyncio.sleep(self.cfg.heartbeat_interval)
            if self._misses:
                self.metrics["heartbeat_misses"].labels(peer=self.name).inc()
            if self._misses >= self.cfg.heartbeat_budget:
                if not self.suspect:
                    self.suspect = True
                    self.metrics["suspects"].inc()
                return  # recycle the session; frames stay buffered
            self._misses += 1
            seq += 1
            self.submit_control(encode_frame(seq, KIND_PING))

    def submit_control(self, frame: bytes) -> None:
        """Queue a fire-and-forget control frame (no ack, no deadline).

        Control frames bypass the unacked table entirely: a lost ping
        simply counts as a heartbeat miss, it is never retransmitted.
        """
        self._control.append(frame)
        self._wake.set()

    # -- driver-side observability ----------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._unacked)


class RealNetwork(SyncNetwork):
    """Seeded delivery schedule, physically conveyed over asyncio TCP.

    Drop-in for :class:`SyncNetwork` (same constructor surface plus the
    custodian cluster): the latency RNG, FIFO fronts, fault hook and
    stats behave identically, so a seeded run commits bit-identical
    ledgers over either backend.  Additionally every scheduled message
    copy is framed and shipped to the custodian peer that hosts its
    receiver, and :meth:`run_until` blocks the corresponding logical
    delivery until the frame's acknowledgement returns.

    Args:
        sim: Shared simulator (clock authority), as for the base class.
        custodians: ``(name, host, port)`` triples — the peer processes
            (started with ``repro serve`` or in-process
            :class:`NodeServer`) that custody node identities.  Node ids
            are assigned round-robin in registration order, so the
            assignment is deterministic for a deterministic build order.
        config: Robustness knobs (:class:`TransportConfig`).
    """

    def __init__(
        self,
        sim: Simulator,
        min_delay: float = 0.01,
        max_delay: float = 0.1,
        seed: int = 1,
        obs: MetricsRegistry | None = None,
        custodians: tuple[tuple[str, str, int], ...] = (),
        config: TransportConfig | None = None,
    ):
        super().__init__(
            sim, min_delay=min_delay, max_delay=max_delay, seed=seed, obs=obs
        )
        if not custodians:
            raise ConfigurationError(
                "RealNetwork needs at least one custodian peer; use "
                "SyncNetwork for pure simulation"
            )
        self.config = config if config is not None else TransportConfig()
        self.metrics = transport_metrics(self.obs)
        self._seq = 0
        #: seq -> (logical stamp, custodian name) for in-flight frames.
        self._outstanding: dict[int, tuple[float, str]] = {}
        #: Lazy min-heap of (stamp, seq) mirrors of ``_outstanding``.
        self._stamps: list[tuple[float, int]] = []
        self._cond = threading.Condition()
        self._failure: PeerUnreachableError | None = None
        self._last_progress = time.monotonic()
        self._closed = False
        self._assign: dict[str, _PeerSupervisor] = {}
        self._loop = asyncio.new_event_loop()
        self.supervisors = [
            _PeerSupervisor(self, name, host, port)
            for name, host, port in custodians
        ]
        self._thread = threading.Thread(
            target=self._loop_main, name="realnet-io", daemon=True
        )
        self._thread.start()

    # -- background loop ---------------------------------------------------

    def _loop_main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._tasks = [
            self._loop.create_task(sup.run()) for sup in self.supervisors
        ]
        self._loop.run_forever()
        for task in self._tasks:
            task.cancel()
        try:
            self._loop.run_until_complete(
                asyncio.gather(*self._tasks, return_exceptions=True)
            )
        finally:
            self._loop.close()

    # -- Transport surface -------------------------------------------------

    def close(self) -> None:
        """Stop supervisors, drop connections, join the IO thread."""
        if self._closed:
            return
        self._closed = True
        for sup in self.supervisors:
            self._loop.call_soon_threadsafe(sup.shutdown)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    # -- conveyance --------------------------------------------------------

    def _custodian_for(self, node_id: str) -> _PeerSupervisor:
        sup = self._assign.get(node_id)
        if sup is None:
            sup = self.supervisors[len(self._assign) % len(self.supervisors)]
            self._assign[node_id] = sup
        return sup

    def _convey(self, message: Message, size_hint: int) -> None:
        if self._closed:
            return
        self._seq += 1
        seq = self._seq
        body = pickle.dumps(
            (message.sender, message.receiver, message.payload),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        frame = encode_frame(seq, KIND_MSG, body)
        sup = self._custodian_for(message.receiver)
        with self._cond:
            self._outstanding[seq] = (message.deliver_at, sup.name)
            heapq.heappush(self._stamps, (message.deliver_at, seq))
        self._loop.call_soon_threadsafe(sup.submit, seq, frame)

    # -- loop-thread callbacks --------------------------------------------

    def _acked(self, seq: int) -> None:
        with self._cond:
            self._outstanding.pop(seq, None)
            self._last_progress = time.monotonic()
            self._cond.notify_all()

    def _fail(self, exc: PeerUnreachableError) -> None:
        with self._cond:
            if self._failure is None:
                self._failure = exc
            self._cond.notify_all()

    # -- gated clock advance ----------------------------------------------

    def _gate(self) -> tuple[float, int] | None:
        """Earliest logical stamp still awaiting physical conveyance."""
        while self._stamps and self._stamps[0][1] not in self._outstanding:
            heapq.heappop(self._stamps)
        return self._stamps[0] if self._stamps else None

    def run_until(self, until: float, max_events: int = 10_000_000) -> int:
        """Advance the seeded clock to ``until``, physically mediated.

        Identical to :meth:`SyncNetwork.run_until` in logical effect —
        the clock always parks exactly at ``until`` — but a delivery
        event is executed only once its frame's acknowledgement has
        physically arrived; until then the driver blocks (bounded by the
        stall watchdog and the supervisors' own budgets, which surface
        as :class:`~repro.exceptions.PeerUnreachableError`).
        """
        executed = 0
        while True:
            with self._cond:
                if self._failure is not None:
                    raise self._failure
            next_time = self.sim.queue.peek_time()
            if next_time is None or next_time > until:
                break
            with self._cond:
                gate = self._gate()
            if gate is not None and next_time >= gate[0] - 1e-12:
                self._await_conveyance(gate)
                continue
            self.sim.step()
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
        if self.sim.now < until:
            self.sim.clock.advance_to(until)
        return executed

    def _await_conveyance(self, gate: tuple[float, int]) -> None:
        stamp, seq = gate
        with self._cond:
            self._last_progress = time.monotonic()
            while seq in self._outstanding:
                if self._failure is not None:
                    raise self._failure
                waited = time.monotonic() - self._last_progress
                if waited > self.config.stall_timeout:
                    peer = self._outstanding[seq][1]
                    raise PeerUnreachableError(
                        peer,
                        f"no conveyance progress for {waited:.1f}s "
                        f"(stall watchdog; frame {seq}, stamp {stamp:.4f})",
                    )
                self._cond.wait(timeout=0.05)


# -- custodian peer ---------------------------------------------------------


class NodeServer:
    """A custodian peer: validates and acknowledges conveyed frames.

    The ``repro serve`` subcommand runs one of these per cluster
    process.  For every CRC-valid ``MSG`` frame it returns an ``ACK``
    carrying the same sequence number (acknowledging *conveyance* — the
    custodied identities' logical state lives with the driving engine;
    see DESIGN.md on the split).  ``PING`` frames earn a ``PONG``.
    Malformed or CRC-corrupt input drops the connection, which pushes
    the sender down its retransmit/reconnect path.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self.frames_acked = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _serve_connection(self, reader, writer) -> None:
        frames = FrameReader()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    decoded = frames.feed(data)
                except FrameError:
                    break  # corrupt stream: force the client to resend
                for seq, kind, _body in decoded:
                    if kind == KIND_MSG:
                        self.frames_acked += 1
                        writer.write(encode_frame(seq, KIND_ACK))
                    elif kind == KIND_PING:
                        writer.write(encode_frame(seq, KIND_PONG))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def close(self) -> None:
        if self._server is not None:
            self._server.close()


def start_server_thread(
    host: str = "127.0.0.1", port: int = 0
) -> tuple[NodeServer, Any]:
    """Run a :class:`NodeServer` on a background thread (tests, harness).

    Returns ``(server, stop)`` where ``server.port`` is bound and
    ``stop()`` shuts the loop down and joins the thread.  ``port=0``
    binds an OS-assigned port; a fixed port supports restart tests.
    """
    server = NodeServer(host=host, port=port)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def main() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=main, name="node-server", daemon=True)
    thread.start()
    if not started.wait(timeout=10.0):  # pragma: no cover - defensive
        raise PeerUnreachableError("node-server", "server thread failed to bind")

    def stop() -> None:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)

    return server, stop
