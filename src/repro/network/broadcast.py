"""Atomic (total-order) broadcast primitives.

The paper requires that ``broadcast_provider``, ``broadcast_collector``
and ``broadcast_governor`` all implement atomic broadcast — total-order
delivery [Cachin-Guerraoui-Rodrigues] — so that receivers agree on the
order of messages from the same layer and "collectors are not confused
about the order of transactions" (Section 3.2).

In a synchronous permissioned network, total order can be realised with
a sequencer: the (trusted for ordering, not for content) Identity
Manager timestamps each broadcast with a global sequence number, and
receivers deliver in sequence-number order, buffering out-of-order
arrivals.  :class:`AtomicBroadcast` implements exactly that.  It gives:

* **validity** — a broadcast by a correct sender is delivered to every
  registered, non-partitioned receiver;
* **total order** — all receivers in a group deliver the same sequence;
* **integrity** — each broadcast is delivered at most once per receiver.

Each broadcast *group* (providers->their collectors, collectors->governors,
governors->governors) is an independent total order, which is all the
protocol needs.

Under fault injection (``repro.faults``) a sequenced payload can be
lost, leaving a receiver blocked on the sequence gap forever.  The
*gap-repair* extension closes that hole: the sequencer retains a
bounded send-buffer of recent payloads, a receiver whose gap persists
past a timeout sends a :class:`GapRepairRequest` (a NACK) to the
sequencer node, and the sequencer retransmits the missing range.  If
the primary sequencer node is itself crashed, the receiver fails over
to a deterministic backup after ``failover_after`` unanswered attempts.
The manual :meth:`AtomicBroadcast.skip_to` escape hatch remains for
out-of-band recovery (ledger sync).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import SimulationError
from repro.network.simnet import Message, SyncNetwork
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["SequencedPayload", "GapRepairRequest", "AtomicBroadcast"]


@dataclass(frozen=True)
class SequencedPayload:
    """A broadcast payload stamped with its group-wide sequence number."""

    group: str
    seqno: int
    sender: str
    body: Any
    kind: str = "abcast"


@dataclass(frozen=True)
class GapRepairRequest:
    """A receiver's NACK: re-send ``[from_seqno, to_seqno]`` of ``group``."""

    group: str
    requester: str
    from_seqno: int
    to_seqno: int
    kind: str = "abcast-nack"


@dataclass
class _ReceiverState:
    """Delivery buffer of one receiver within one group."""

    next_seqno: int = 0
    pending: list[tuple[int, int, SequencedPayload, Message]] = field(default_factory=list)
    tiebreak: itertools.count = field(default_factory=itertools.count)
    # Gap-repair bookkeeping: whether a repair timer is outstanding and
    # how many NACKs this gap has already cost.
    repair_scheduled: bool = False
    repair_attempts: int = 0


class AtomicBroadcast:
    """Sequencer-based total-order broadcast over a :class:`SyncNetwork`.

    One instance manages many named groups.  Group membership is static
    after :meth:`join` calls, matching the permissioned setting where
    membership is known.
    """

    #: How many recent payloads the sequencer retains per group for
    #: gap repair.  Far larger than any gap a bounded fault plan can
    #: open; a request below the retention horizon is counted in
    #: ``repairs_expired`` and the member must fall back to ``skip_to``.
    DEFAULT_RETENTION = 4096

    def __init__(
        self,
        network: SyncNetwork,
        retention: int = DEFAULT_RETENTION,
        obs: MetricsRegistry | None = None,
    ):
        self.network = network
        self.retention = retention
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._m_broadcasts = self.obs.counter(
            "abcast_broadcasts_total",
            "Payloads sequenced per broadcast group",
            labels=("group",),
        )
        self._m_delivered = self.obs.counter(
            "abcast_delivered_total",
            "In-order deliveries (cursor advances) per broadcast group",
            labels=("group",),
        )
        self._m_misrouted = self.obs.counter(
            "abcast_misrouted_dropped_total",
            "Sequenced payloads dropped at a non-member receiver",
        )
        self._m_repairs = self.obs.counter(
            "abcast_repairs_total",
            "Gap-repair (NACK) events by outcome",
            labels=("event",),
        )
        self._m_failover_nacks = self.obs.counter(
            "abcast_failover_nacks_total",
            "Repair requests addressed to the backup sequencer endpoint",
        )
        self._members: dict[str, list[str]] = {}
        self._deliver: dict[tuple[str, str], Callable[[str, Any], None]] = {}
        self._state: dict[tuple[str, str], _ReceiverState] = {}
        self._next_seqno: dict[str, int] = {}
        # Sequencer-side retained payloads: group -> {seqno: (payload, size_hint)}.
        self._sent: dict[str, dict[int, tuple[SequencedPayload, int]]] = {}
        # Gap repair configuration (enable_gap_repair) and counters.
        self._repair_primary: str | None = None
        self._repair_backup: str | None = None
        self._repair_timeout: float = 0.0
        self._repair_max_attempts: int = 0
        self._repair_failover_after: int = 0
        self.misrouted_dropped = 0
        self.repairs_requested = 0
        self.repairs_served = 0
        self.repairs_expired = 0
        self.repairs_gave_up = 0
        # Optional reliable transport (repro.network.reliable) for a
        # subset of groups; all other groups use plain network.send.
        self._transport = None
        self._reliable_groups: set[str] = set()

    def create_group(self, group: str, members: list[str]) -> None:
        """Declare a broadcast group with a fixed receiver set."""
        if group in self._members:
            raise SimulationError(f"broadcast group {group!r} already exists")
        if len(set(members)) != len(members):
            raise SimulationError(f"duplicate members in group {group!r}")
        self._members[group] = list(members)
        self._next_seqno[group] = 0
        for member in members:
            self._state[(group, member)] = _ReceiverState()

    def has_group(self, group: str) -> bool:
        """Whether ``group`` has been declared."""
        return group in self._members

    def members_of(self, group: str) -> list[str]:
        """The receiver set of ``group``."""
        try:
            return list(self._members[group])
        except KeyError:
            raise SimulationError(f"unknown broadcast group {group!r}") from None

    def register_handler(
        self, group: str, member: str, handler: Callable[[str, Any], None]
    ) -> None:
        """Set the in-order delivery callback ``handler(sender, body)``."""
        if (group, member) not in self._state:
            raise SimulationError(f"{member!r} is not a member of group {group!r}")
        self._deliver[(group, member)] = handler

    def broadcast(self, group: str, sender: str, body: Any, size_hint: int = 1) -> int:
        """Atomically broadcast ``body`` to every member of ``group``.

        Returns the assigned sequence number.  The sender need not be a
        member (providers broadcast *to* collectors without receiving).
        """
        if group not in self._members:
            raise SimulationError(f"unknown broadcast group {group!r}")
        seqno = self._next_seqno[group]
        self._next_seqno[group] = seqno + 1
        self._m_broadcasts.labels(group=group).inc()
        payload = SequencedPayload(group=group, seqno=seqno, sender=sender, body=body)
        if self._repair_primary is not None:
            retained = self._sent.setdefault(group, {})
            retained[seqno] = (payload, size_hint)
            if len(retained) > self.retention:
                del retained[min(retained)]
        reliable = self._transport is not None and group in self._reliable_groups
        if reliable:
            for member in self._members[group]:
                self._transport.send(sender, member, payload, size_hint=size_hint)
        else:
            # One vectorized latency draw for the whole fan-out (see
            # SyncNetwork.multicast); bit-identical to per-member sends.
            self.network.multicast(
                sender, self._members[group], payload, size_hint=size_hint
            )
        return seqno

    # -- receiver side -------------------------------------------------

    def on_message(self, member: str, message: Message) -> bool:
        """Feed a raw network message into the broadcast layer.

        Returns True if the message was handled here: a broadcast
        payload (delivered, buffered, or — if misrouted to a member
        outside its group — explicitly dropped and counted); False lets
        the caller route non-broadcast traffic elsewhere.
        """
        payload = message.payload
        if not isinstance(payload, SequencedPayload):
            return False
        key = (payload.group, member)
        state = self._state.get(key)
        if state is None:
            # A sequenced payload for a group this member does not
            # belong to must never fall through to the application
            # handler: fault-injected duplicates or misrouted repairs
            # would corrupt it.  Drop and count.
            self.misrouted_dropped += 1
            self._m_misrouted.inc()
            return True
        heapq.heappush(
            state.pending, (payload.seqno, next(state.tiebreak), payload, message)
        )
        self._drain(key, state)
        self._maybe_schedule_repair(key, state)
        return True

    def _drain(self, key: tuple[str, str], state: _ReceiverState) -> None:
        handler = self._deliver.get(key)
        while state.pending and state.pending[0][0] <= state.next_seqno:
            seqno, _tie, payload, _msg = heapq.heappop(state.pending)
            if seqno < state.next_seqno:
                # Duplicate delivery attempt; integrity says drop it.
                continue
            state.next_seqno = seqno + 1
            self._m_delivered.labels(group=key[0]).inc()
            if handler is not None:
                handler(payload.sender, payload.body)

    def delivered_count(self, group: str, member: str) -> int:
        """How many broadcasts this member has delivered in-order so far."""
        state = self._state.get((group, member))
        return 0 if state is None else state.next_seqno

    def skip_to(self, group: str, member: str, seqno: int) -> None:
        """Recovery hook: advance a member's delivery cursor to ``seqno``.

        A member that missed broadcasts while crashed/partitioned can
        never deliver later ones (total order blocks on the gap).  After
        it recovers the missed *content* out-of-band — e.g. blocks via
        :func:`repro.ledger.sync.sync_replica` — it calls ``skip_to`` to
        declare seqnos below ``seqno`` handled, which releases buffered
        later messages.  Moving the cursor backwards is a no-op
        (delivered messages are never replayed).
        """
        state = self._state.get((group, member))
        if state is None:
            raise SimulationError(f"{member!r} is not a member of group {group!r}")
        if seqno > state.next_seqno:
            state.next_seqno = seqno
        state.repair_attempts = 0
        self._drain((group, member), state)

    # -- gap repair (NACK / retransmit) ---------------------------------

    def enable_gap_repair(
        self,
        primary: str,
        backup: str | None = None,
        timeout: float | None = None,
        max_attempts: int = 16,
        failover_after: int = 2,
    ) -> None:
        """Turn on automatic NACK-based repair of sequence gaps.

        Args:
            primary: Node id of the sequencer's repair endpoint; it is
                registered on the network here, so use a dedicated id
                (not one of the group members).
            backup: Deterministic failover endpoint; receivers switch to
                it after ``failover_after`` unanswered NACKs, removing
                the sequencer as a single point of failure.  In the
                simulation both endpoints answer from the same retained
                send-buffer, modelling a sequencer that replicates its
                buffer to the backup synchronously.
            timeout: How long a gap must persist before the first NACK
                (default ``4 * network.max_delay``); also the base of
                the mildly-exponential re-NACK backoff.
            max_attempts: NACK budget per gap before the member gives up
                and waits for out-of-band recovery (``skip_to``).
            failover_after: Attempts addressed to ``primary`` before
                failing over to ``backup``.
        """
        if timeout is None:
            timeout = 4 * self.network.max_delay
        if timeout <= 0:
            raise SimulationError(f"repair timeout must be positive, got {timeout}")
        self._repair_primary = primary
        self._repair_backup = backup
        self._repair_timeout = timeout
        self._repair_max_attempts = max_attempts
        self._repair_failover_after = failover_after
        self.network.register(primary, self._sequencer_handler(primary))
        if backup is not None:
            self.network.register(backup, self._sequencer_handler(backup))

    def set_transport(self, transport, groups: set[str]) -> None:
        """Route the given groups' broadcasts through a reliable channel.

        ``transport`` must expose ``send(sender, receiver, payload,
        size_hint)`` — see :class:`repro.network.reliable.ReliableChannel`.
        """
        self._transport = transport
        self._reliable_groups = set(groups)

    def add_reliable_group(self, group: str) -> None:
        """Route one more group through the reliable transport.

        Used when a group is created after :meth:`set_transport` (e.g. a
        collector migrating onto this shard mid-run).
        """
        if self._transport is None:
            raise SimulationError("no reliable transport installed")
        self._reliable_groups.add(group)

    def _sequencer_handler(self, seq_id: str):
        def handle(message: Message) -> None:
            request = message.payload
            if not isinstance(request, GapRepairRequest):
                return
            retained = self._sent.get(request.group, {})
            for seqno in range(request.from_seqno, request.to_seqno + 1):
                entry = retained.get(seqno)
                if entry is None:
                    # Evicted past the retention horizon: unrepairable
                    # here, the member needs ledger sync + skip_to.
                    self.repairs_expired += 1
                    self._m_repairs.labels(event="expired").inc()
                    continue
                payload, size_hint = entry
                self.repairs_served += 1
                self._m_repairs.labels(event="served").inc()
                self.network.send(seq_id, request.requester, payload, size_hint=size_hint)
        return handle

    def _active_repair_target(self, state: _ReceiverState) -> str:
        assert self._repair_primary is not None
        if (
            self._repair_backup is not None
            and state.repair_attempts >= self._repair_failover_after
        ):
            return self._repair_backup
        return self._repair_primary

    def _gap_head(self, state: _ReceiverState) -> int | None:
        """Seqno of the oldest buffered-but-undeliverable payload, or None."""
        if state.pending and state.pending[0][0] > state.next_seqno:
            return state.pending[0][0]
        return None

    def _maybe_schedule_repair(self, key: tuple[str, str], state: _ReceiverState) -> None:
        if self._repair_primary is None or state.repair_scheduled:
            return
        if self._gap_head(state) is None:
            state.repair_attempts = 0
            return
        state.repair_scheduled = True
        group, member = key
        delay = self._repair_timeout * (1.5 ** min(state.repair_attempts, 8))
        self.network.sim.schedule_after(
            delay,
            lambda: self._repair_check(key),
            label=f"gap-check:{group}:{member}",
        )

    def _repair_check(self, key: tuple[str, str]) -> None:
        state = self._state.get(key)
        if state is None:
            return
        state.repair_scheduled = False
        head = self._gap_head(state)
        if head is None:
            state.repair_attempts = 0
            return
        if state.repair_attempts >= self._repair_max_attempts:
            self.repairs_gave_up += 1
            self._m_repairs.labels(event="gave_up").inc()
            return
        group, member = key
        target = self._active_repair_target(state)
        state.repair_attempts += 1
        self.repairs_requested += 1
        self._m_repairs.labels(event="requested").inc()
        if target == self._repair_backup:
            self._m_failover_nacks.inc()
        request = GapRepairRequest(
            group=group,
            requester=member,
            from_seqno=state.next_seqno,
            to_seqno=head - 1,
        )
        self.network.send(member, target, request)
        # Re-arm: if the retransmission is itself lost (or the target is
        # crashed), the next check escalates / fails over.
        self._maybe_schedule_repair(key, state)

    def force_repair_scan(self) -> int:
        """Issue a NACK for every member lagging the group's seqno.

        Timer-based detection only fires when a *later* payload sits in
        the buffer; a member whose missing payload was the last one sent
        has an invisible gap.  Harnesses call this at round/finalize
        boundaries — a stand-in for the periodic sequencer heartbeat a
        deployment would run.  Returns the number of NACKs issued.
        """
        if self._repair_primary is None:
            return 0
        issued = 0
        for (group, member), state in self._state.items():
            tip = self._next_seqno[group]
            if state.next_seqno >= tip:
                continue
            target = self._active_repair_target(state)
            state.repair_attempts += 1
            self.repairs_requested += 1
            self._m_repairs.labels(event="requested").inc()
            if target == self._repair_backup:
                self._m_failover_nacks.inc()
            self.network.send(
                member,
                target,
                GapRepairRequest(
                    group=group,
                    requester=member,
                    from_seqno=state.next_seqno,
                    to_seqno=tip - 1,
                ),
            )
            issued += 1
        return issued

    def pending_gap_count(self, group: str, member: str) -> int:
        """Messages buffered behind a sequence gap for one member."""
        state = self._state.get((group, member))
        if state is None:
            raise SimulationError(f"{member!r} is not a member of group {group!r}")
        return len(state.pending)

    def pending_gap_total(self) -> int:
        """Messages stuck in gap buffers across every group and member."""
        return sum(len(state.pending) for state in self._state.values())

    def current_seqno(self, group: str) -> int:
        """The next sequence number the group will assign."""
        if group not in self._members:
            raise SimulationError(f"unknown broadcast group {group!r}")
        return self._next_seqno[group]
