"""Atomic (total-order) broadcast primitives.

The paper requires that ``broadcast_provider``, ``broadcast_collector``
and ``broadcast_governor`` all implement atomic broadcast — total-order
delivery [Cachin-Guerraoui-Rodrigues] — so that receivers agree on the
order of messages from the same layer and "collectors are not confused
about the order of transactions" (Section 3.2).

In a synchronous permissioned network, total order can be realised with
a sequencer: the (trusted for ordering, not for content) Identity
Manager timestamps each broadcast with a global sequence number, and
receivers deliver in sequence-number order, buffering out-of-order
arrivals.  :class:`AtomicBroadcast` implements exactly that.  It gives:

* **validity** — a broadcast by a correct sender is delivered to every
  registered, non-partitioned receiver;
* **total order** — all receivers in a group deliver the same sequence;
* **integrity** — each broadcast is delivered at most once per receiver.

Each broadcast *group* (providers->their collectors, collectors->governors,
governors->governors) is an independent total order, which is all the
protocol needs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import SimulationError
from repro.network.simnet import Message, SyncNetwork

__all__ = ["SequencedPayload", "AtomicBroadcast"]


@dataclass(frozen=True)
class SequencedPayload:
    """A broadcast payload stamped with its group-wide sequence number."""

    group: str
    seqno: int
    sender: str
    body: Any
    kind: str = "abcast"


@dataclass
class _ReceiverState:
    """Delivery buffer of one receiver within one group."""

    next_seqno: int = 0
    pending: list[tuple[int, int, SequencedPayload, Message]] = field(default_factory=list)
    tiebreak: itertools.count = field(default_factory=itertools.count)


class AtomicBroadcast:
    """Sequencer-based total-order broadcast over a :class:`SyncNetwork`.

    One instance manages many named groups.  Group membership is static
    after :meth:`join` calls, matching the permissioned setting where
    membership is known.
    """

    def __init__(self, network: SyncNetwork):
        self.network = network
        self._members: dict[str, list[str]] = {}
        self._deliver: dict[tuple[str, str], Callable[[str, Any], None]] = {}
        self._state: dict[tuple[str, str], _ReceiverState] = {}
        self._next_seqno: dict[str, int] = {}

    def create_group(self, group: str, members: list[str]) -> None:
        """Declare a broadcast group with a fixed receiver set."""
        if group in self._members:
            raise SimulationError(f"broadcast group {group!r} already exists")
        if len(set(members)) != len(members):
            raise SimulationError(f"duplicate members in group {group!r}")
        self._members[group] = list(members)
        self._next_seqno[group] = 0
        for member in members:
            self._state[(group, member)] = _ReceiverState()

    def members_of(self, group: str) -> list[str]:
        """The receiver set of ``group``."""
        try:
            return list(self._members[group])
        except KeyError:
            raise SimulationError(f"unknown broadcast group {group!r}") from None

    def register_handler(
        self, group: str, member: str, handler: Callable[[str, Any], None]
    ) -> None:
        """Set the in-order delivery callback ``handler(sender, body)``."""
        if (group, member) not in self._state:
            raise SimulationError(f"{member!r} is not a member of group {group!r}")
        self._deliver[(group, member)] = handler

    def broadcast(self, group: str, sender: str, body: Any, size_hint: int = 1) -> int:
        """Atomically broadcast ``body`` to every member of ``group``.

        Returns the assigned sequence number.  The sender need not be a
        member (providers broadcast *to* collectors without receiving).
        """
        if group not in self._members:
            raise SimulationError(f"unknown broadcast group {group!r}")
        seqno = self._next_seqno[group]
        self._next_seqno[group] = seqno + 1
        payload = SequencedPayload(group=group, seqno=seqno, sender=sender, body=body)
        for member in self._members[group]:
            self.network.send(sender, member, payload, size_hint=size_hint)
        return seqno

    # -- receiver side -------------------------------------------------

    def on_message(self, member: str, message: Message) -> bool:
        """Feed a raw network message into the broadcast layer.

        Returns True if the message was a broadcast payload for a group
        this member belongs to (whether delivered now or buffered); False
        lets the caller route non-broadcast traffic elsewhere.
        """
        payload = message.payload
        if not isinstance(payload, SequencedPayload):
            return False
        key = (payload.group, member)
        state = self._state.get(key)
        if state is None:
            return False
        heapq.heappush(
            state.pending, (payload.seqno, next(state.tiebreak), payload, message)
        )
        self._drain(key, state)
        return True

    def _drain(self, key: tuple[str, str], state: _ReceiverState) -> None:
        handler = self._deliver.get(key)
        while state.pending and state.pending[0][0] <= state.next_seqno:
            seqno, _tie, payload, _msg = heapq.heappop(state.pending)
            if seqno < state.next_seqno:
                # Duplicate delivery attempt; integrity says drop it.
                continue
            state.next_seqno = seqno + 1
            if handler is not None:
                handler(payload.sender, payload.body)

    def delivered_count(self, group: str, member: str) -> int:
        """How many broadcasts this member has delivered in-order so far."""
        state = self._state.get((group, member))
        return 0 if state is None else state.next_seqno

    def skip_to(self, group: str, member: str, seqno: int) -> None:
        """Recovery hook: advance a member's delivery cursor to ``seqno``.

        A member that missed broadcasts while crashed/partitioned can
        never deliver later ones (total order blocks on the gap).  After
        it recovers the missed *content* out-of-band — e.g. blocks via
        :func:`repro.ledger.sync.sync_replica` — it calls ``skip_to`` to
        declare seqnos below ``seqno`` handled, which releases buffered
        later messages.  Moving the cursor backwards is a no-op
        (delivered messages are never replayed).
        """
        state = self._state.get((group, member))
        if state is None:
            raise SimulationError(f"{member!r} is not a member of group {group!r}")
        if seqno > state.next_seqno:
            state.next_seqno = seqno
        self._drain((group, member), state)

    def current_seqno(self, group: str) -> int:
        """The next sequence number the group will assign."""
        if group not in self._members:
            raise SimulationError(f"unknown broadcast group {group!r}")
        return self._next_seqno[group]
