"""Synchronized clocks with bounded drift.

Section 3.1 assumes a synchronous system: *"each node is equipped with a
local physical clock and there is an upper bound on the rate at which
any local clock deviates from a global real-time clock"*.

:class:`GlobalClock` is the simulation's real-time reference driven by
the event loop; :class:`LocalClock` derives a node's physical clock from
it with a bounded drift rate and offset, so timestamp-dependent logic
(transaction timestamps, the Delta timer in screening) can be tested
under worst-case drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SimulationError

__all__ = ["GlobalClock", "LocalClock"]


@dataclass
class GlobalClock:
    """Monotonic global real-time clock advanced by the simulator."""

    _now: float = 0.0

    @property
    def now(self) -> float:
        """Current global time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move time forward to ``t``.

        Raises:
            SimulationError: on an attempt to move time backwards, which
                would indicate event-queue corruption.
        """
        if t < self._now:
            raise SimulationError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = t


@dataclass
class LocalClock:
    """A node's physical clock: ``local = offset + rate * global``.

    The synchrony assumption bounds ``|rate - 1| <= max_drift_rate`` and
    ``|offset| <= max_offset``; the constructor enforces the bounds so a
    misconfigured experiment fails loudly instead of silently breaking
    the synchronous-model analysis.
    """

    global_clock: GlobalClock
    offset: float = 0.0
    rate: float = 1.0
    max_drift_rate: float = 0.01
    max_offset: float = 1.0
    _field_check: None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if abs(self.rate - 1.0) > self.max_drift_rate + 1e-12:
            raise SimulationError(
                f"clock rate {self.rate} exceeds drift bound {self.max_drift_rate}"
            )
        if abs(self.offset) > self.max_offset:
            raise SimulationError(
                f"clock offset {self.offset} exceeds bound {self.max_offset}"
            )

    @property
    def now(self) -> float:
        """This node's local physical time."""
        return self.offset + self.rate * self.global_clock.now

    def max_deviation_at(self, horizon: float) -> float:
        """Worst-case |local - global| once global time reaches ``horizon``.

        Useful when sizing the screening timer Delta: a timer must be
        padded by the deviation bound to be safe under drift.
        """
        return abs(self.offset) + abs(self.rate - 1.0) * horizon
