"""Merkle trees over block transaction lists.

The paper stores the full ``TXList`` in each block; production
permissioned chains (Fabric, Tendermint) commit to the list with a
Merkle root so that membership can be proven in O(log b) hashes.  We
provide the same facility: blocks carry a Merkle root of their
transaction digests, and light clients (e.g. a provider checking how his
transaction was labeled before invoking ``argue``) can verify inclusion
proofs without downloading other transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto.hashing import hash_value, sha256

__all__ = ["MerkleTree", "MerkleProof", "merkle_root"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
#: Root of the empty tree, a domain-separated constant.
EMPTY_ROOT = sha256(b"empty-merkle-tree")


def _leaf_hash(item: Any) -> bytes:
    """Hash a leaf with a domain-separation prefix (blocks 2nd-preimage tricks)."""
    return sha256(_LEAF_PREFIX + hash_value(item))


def _node_hash(left: bytes, right: bytes) -> bytes:
    """Hash an interior node."""
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf index plus sibling hashes bottom-up.

    ``path`` holds ``(sibling_digest, sibling_is_right)`` pairs from the
    leaf's level to just below the root.
    """

    index: int
    leaf: bytes
    path: tuple[tuple[bytes, bool], ...]

    def compute_root(self) -> bytes:
        """Fold the path to recover the root this proof commits to."""
        digest = self.leaf
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                digest = _node_hash(digest, sibling)
            else:
                digest = _node_hash(sibling, digest)
        return digest


class MerkleTree:
    """A Merkle tree over an ordered sequence of items.

    Odd nodes at any level are promoted unchanged (Bitcoin-style
    duplication is avoided because it admits mutation attacks).
    """

    def __init__(self, items: Sequence[Any]):
        self._leaves = [_leaf_hash(item) for item in items]
        self._levels: list[list[bytes]] = [list(self._leaves)]
        if not self._leaves:
            self._root = EMPTY_ROOT
            return
        level = self._levels[0]
        while len(level) > 1:
            nxt: list[bytes] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_node_hash(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            self._levels.append(nxt)
            level = nxt
        self._root = level[0]

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def root(self) -> bytes:
        """The tree's root commitment."""
        return self._root

    def prove(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``index``.

        Raises:
            IndexError: if ``index`` is out of range.
        """
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range [0, {len(self._leaves)})")
        path: list[tuple[bytes, bool]] = []
        pos = index
        for level in self._levels[:-1]:
            if pos % 2 == 0:
                if pos + 1 < len(level):
                    path.append((level[pos + 1], True))
                # else: last node of an odd level is promoted with no sibling
            else:
                path.append((level[pos - 1], False))
            # Both paired and promoted nodes land at index pos // 2 above.
            pos //= 2
        return MerkleProof(index=index, leaf=self._leaves[index], path=tuple(path))

    def verify(self, proof: MerkleProof) -> bool:
        """Whether ``proof`` is valid against this tree's root."""
        return proof.compute_root() == self._root

    @staticmethod
    def verify_against(root: bytes, item: Any, proof: MerkleProof) -> bool:
        """Verify that ``item`` is committed under ``root`` via ``proof``."""
        if proof.leaf != _leaf_hash(item):
            return False
        return proof.compute_root() == root


def merkle_root(items: Sequence[Any]) -> bytes:
    """Root of the Merkle tree over ``items`` (EMPTY_ROOT for [])."""
    return MerkleTree(items).root
