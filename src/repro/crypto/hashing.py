"""Collision-resistant hashing used throughout the ledger.

The paper assumes a public collision-resistant hash function ``H`` used to
chain blocks (Chain Integrity property, Section 3.1).  We wrap SHA-256
behind a small canonical-serialisation layer so that every structured
object in the system hashes to a stable, platform-independent digest.

Canonical serialisation rules
-----------------------------
* ``bytes`` are hashed as-is with a length prefix.
* ``str`` is encoded UTF-8.
* ``int`` is encoded as its decimal string (arbitrary precision).
* ``float`` is encoded via ``repr`` (shortest round-trip form).
* ``None``, ``bool`` get fixed tags.
* tuples/lists hash the concatenation of member digests with a length
  prefix, so ``("a", "b")`` and ``("ab",)`` differ.
* dicts hash sorted ``(key, value)`` pairs.

Every encoding is prefixed with a one-byte type tag to rule out
cross-type collisions (``hash_value(1)`` never equals ``hash_value("1")``).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

__all__ = ["DIGEST_SIZE", "sha256", "hash_value", "hash_many", "hexdigest"]

#: Size in bytes of every digest produced by this module.
DIGEST_SIZE = 32

_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"f"
_TAG_SEQ = b"L"
_TAG_MAP = b"M"


def sha256(data: bytes) -> bytes:
    """Return the raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def _encode(value: Any, out: list[bytes]) -> None:
    """Append the canonical encoding of ``value`` to ``out``."""
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES)
        out.append(len(value).to_bytes(8, "big"))
        out.append(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(len(raw).to_bytes(8, "big"))
        out.append(raw)
    elif isinstance(value, int):
        raw = str(value).encode("ascii")
        out.append(_TAG_INT)
        out.append(len(raw).to_bytes(8, "big"))
        out.append(raw)
    elif isinstance(value, float):
        raw = repr(value).encode("ascii")
        out.append(_TAG_FLOAT)
        out.append(len(raw).to_bytes(8, "big"))
        out.append(raw)
    elif isinstance(value, (tuple, list)):
        out.append(_TAG_SEQ)
        out.append(len(value).to_bytes(8, "big"))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        out.append(_TAG_MAP)
        out.append(len(items).to_bytes(8, "big"))
        for key, val in items:
            _encode(key, out)
            _encode(val, out)
    elif hasattr(value, "canonical_bytes"):
        # Domain objects (transactions, blocks) expose their own stable
        # encoding; treat it as opaque bytes.
        _encode(value.canonical_bytes(), out)
    else:
        raise TypeError(f"cannot canonically hash value of type {type(value)!r}")


def canonical_encode(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``.

    The encoding is injective over the supported type universe, which is
    what makes ``hash_value`` collision-resistant whenever SHA-256 is.
    """
    parts: list[bytes] = []
    _encode(value, parts)
    return b"".join(parts)


def hash_value(value: Any) -> bytes:
    """Hash any supported value through the canonical encoding."""
    return sha256(canonical_encode(value))


def hash_many(values: Iterable[Any]) -> bytes:
    """Hash an iterable of values as an ordered sequence.

    Streams each member's canonical encoding into one incremental
    SHA-256 instead of materialising an intermediate tuple and one big
    concatenated buffer; the digest is identical to
    ``hash_value(tuple(values))``.
    """
    if not hasattr(values, "__len__"):
        values = list(values)
    hasher = hashlib.sha256()
    hasher.update(_TAG_SEQ)
    hasher.update(len(values).to_bytes(8, "big"))
    parts: list[bytes] = []
    for item in values:
        _encode(item, parts)
        for part in parts:
            hasher.update(part)
        parts.clear()
    return hasher.digest()


def hexdigest(value: Any) -> str:
    """Hex form of :func:`hash_value`, convenient for logging and ids."""
    return hash_value(value).hex()
