"""Cryptographic substrate: hashing, signatures, VRF, identity, Merkle trees.

Everything the protocol needs from "standard PKI methods" (Section 3.1)
is provided here in a simulation-friendly form; see DESIGN.md for the
substitution argument (HMAC signatures + keyed-hash VRF under a trusted
Identity Manager preserve the properties the protocol relies on).
"""

from repro.crypto.hashing import (
    DIGEST_SIZE,
    canonical_encode,
    hash_many,
    hash_value,
    hexdigest,
    sha256,
)
from repro.crypto.identity import IdentityManager, NodeRecord, Role
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root
from repro.crypto.signatures import Signature, SigningKey, sign, verify_with_key
from repro.crypto.vrf import (
    VRFOutput,
    vrf_evaluate,
    vrf_output_to_unit_interval,
    vrf_verify,
)

__all__ = [
    "DIGEST_SIZE",
    "IdentityManager",
    "MerkleProof",
    "MerkleTree",
    "NodeRecord",
    "Role",
    "Signature",
    "SigningKey",
    "VRFOutput",
    "canonical_encode",
    "hash_many",
    "hash_value",
    "hexdigest",
    "merkle_root",
    "sha256",
    "sign",
    "verify_with_key",
    "vrf_evaluate",
    "vrf_output_to_unit_interval",
    "vrf_verify",
]
