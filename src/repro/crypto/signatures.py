"""Digital-signature substrate.

The paper's Identity Manager hands every node a signing credential; all
interactions are authenticated via digital signatures (Section 3.1).  A
real deployment would use PKI (e.g. ECDSA certificates).  For the
simulation we model signatures with HMAC-SHA256 over a per-node secret
key that only the key holder and the (trusted) Identity Manager know:

* a node signs with its secret,
* anyone can ask the Identity Manager to *verify* a signature against the
  claimed signer's registered key.

This preserves exactly the properties the protocol relies on:

* **unforgeability** — without ``secret``, producing a valid tag requires
  breaking HMAC-SHA256, mirroring the paper's "except with negligible
  probability of the security parameter lambda";
* **non-repudiation inside the alliance** — the IM can attribute every
  message, which is what permissioned settings assume.

The module is deliberately free of any networking or simulation concerns.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import canonical_encode
from repro.exceptions import SignatureError

__all__ = ["SigningKey", "Signature", "sign", "verify_with_key"]


@dataclass(frozen=True)
class SigningKey:
    """A node's signing credential.

    Attributes:
        owner: Node id the Identity Manager issued this key to.
        secret: Random secret bytes; keep private.
    """

    owner: str
    secret: bytes

    def __post_init__(self) -> None:
        if not self.owner:
            raise SignatureError("signing key must name its owner")
        if len(self.secret) < 16:
            raise SignatureError("signing key secret must be >= 16 bytes")

    def fingerprint(self) -> str:
        """Public, non-secret identifier for this key (for logging)."""
        digest = hashlib.sha256(b"fp|" + self.secret).hexdigest()
        return f"{self.owner}:{digest[:16]}"


@dataclass(frozen=True)
class Signature:
    """A signature tag over a message, attributable to ``signer``."""

    signer: str
    tag: bytes

    def __post_init__(self) -> None:
        if len(self.tag) != 32:
            raise SignatureError("signature tag must be a 32-byte HMAC-SHA256 tag")

    def hex(self) -> str:
        """Hex form of the tag for display."""
        return self.tag.hex()


def _message_bytes(message: Any) -> bytes:
    """Canonical bytes of an arbitrary (hashable-structure) message."""
    if isinstance(message, bytes):
        return message
    return canonical_encode(message)


def sign(key: SigningKey, message: Any) -> Signature:
    """Sign ``message`` with ``key``.

    ``message`` may be raw bytes or any structure supported by the
    canonical encoder (str/int/float/tuple/dict/...).
    """
    tag = hmac.new(key.secret, _message_bytes(message), hashlib.sha256).digest()
    return Signature(signer=key.owner, tag=tag)


def verify_with_key(key: SigningKey, message: Any, signature: Signature) -> bool:
    """Verify ``signature`` over ``message`` against ``key``.

    Returns False (never raises) on any mismatch, including a signature
    claiming a different signer than the key owner.  Constant-time tag
    comparison avoids timing side channels, matching real deployments.
    """
    if signature.signer != key.owner:
        return False
    expected = hmac.new(key.secret, _message_bytes(message), hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature.tag)
