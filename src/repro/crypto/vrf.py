"""Simulated Verifiable Random Function (VRF).

Section 3.4.3: each governor computes, for every unit of stake he owns,

    <hash_{j,u}, pi_{j,u}>  <-  VRF_{g_j}(r, j, u)

and broadcasts both; the stake unit with the least hash across all
governors elects its owner as the round leader.

A production system would use the Micali-Rabin-Vadhan construction [27].
In the permissioned setting with a trusted Identity Manager the two
properties the protocol needs are:

* **pseudorandomness** — the hash is unpredictable without the key and
  uniformly distributed, so leadership is proportional to stake;
* **verifiability** — every governor can check that a claimed hash was
  honestly derived from (round, governor, stake-unit).

We realise both with keyed SHA-256: ``output = H(secret || input)`` and
``proof = HMAC(secret, input)`` verified through the key registry.  This
is the standard "random-oracle VRF" substitution and preserves the
distributional behaviour the leader election depends on.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.signatures import SigningKey
from repro.exceptions import VRFError

__all__ = ["VRFOutput", "vrf_evaluate", "vrf_verify", "vrf_output_to_unit_interval"]

#: Number of bytes of VRF output interpreted as the election hash value.
OUTPUT_BYTES = 32


@dataclass(frozen=True)
class VRFOutput:
    """A VRF evaluation: the pseudorandom ``value`` plus its ``proof``."""

    owner: str
    alpha: bytes
    value: bytes
    proof: bytes

    def as_int(self) -> int:
        """The election hash as a big-endian integer (lower wins)."""
        return int.from_bytes(self.value, "big")


def _alpha_bytes(round_number: int, governor_index: int, stake_unit: int) -> bytes:
    """Canonical VRF input for (r, j, u), per the paper's call signature."""
    if round_number < 0 or governor_index < 0 or stake_unit < 0:
        raise VRFError("VRF inputs (round, governor, stake unit) must be non-negative")
    return b"|".join(
        [
            b"vrf-input",
            str(round_number).encode(),
            str(governor_index).encode(),
            str(stake_unit).encode(),
        ]
    )


def vrf_evaluate(
    key: SigningKey, round_number: int, governor_index: int, stake_unit: int
) -> VRFOutput:
    """Evaluate ``VRF_{g_j}(r, j, u)`` with the governor's credential.

    Returns the (value, proof) pair the governor broadcasts.  The value
    is deterministic in (key, r, j, u): re-evaluating yields the same
    output, as a VRF requires.
    """
    alpha = _alpha_bytes(round_number, governor_index, stake_unit)
    value = hashlib.sha256(b"vrf-val|" + key.secret + b"|" + alpha).digest()
    proof = hmac.new(key.secret, b"vrf-prf|" + alpha, hashlib.sha256).digest()
    return VRFOutput(owner=key.owner, alpha=alpha, value=value, proof=proof)


def vrf_verify(key: SigningKey, output: VRFOutput) -> bool:
    """Check a broadcast VRF output against the owner's registered key.

    In the simulation the verifier role is played with access to the
    Identity Manager's key registry (the trusted-CA model); a deployment
    would verify against the public key instead.  Returns False on any
    mismatch — wrong owner, wrong proof, or a value not derived from the
    claimed input.
    """
    if output.owner != key.owner:
        return False
    expected_proof = hmac.new(key.secret, b"vrf-prf|" + output.alpha, hashlib.sha256)
    if not hmac.compare_digest(expected_proof.digest(), output.proof):
        return False
    expected_value = hashlib.sha256(
        b"vrf-val|" + key.secret + b"|" + output.alpha
    ).digest()
    return hmac.compare_digest(expected_value, output.value)


def vrf_output_to_unit_interval(output: VRFOutput) -> float:
    """Map the VRF value to [0, 1) for statistical tests of uniformity."""
    return output.as_int() / float(1 << (8 * OUTPUT_BYTES))
