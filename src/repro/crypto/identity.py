"""Identity Manager (IM) — the permissioning substrate.

Section 3.1 of the paper: *"an Identity Manager (IM) is responsible for
recording the members of the chain as well as their roles. Meanwhile, it
is in charge of providing nodes credentials that are used for
authenticating and authorizing. As a default, an IM should contain all
standard PKI methods and play the role of a Certificate Authority."*

The :class:`IdentityManager` here is that component: it enrolls nodes
with a role, issues signing credentials, and offers a global
``verify(d, m)`` matching the paper's function — including the extra
collector rule that a collector-uploaded message must carry a signature
by a provider that collector is actually linked with.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro import perf
from repro.crypto.hashing import canonical_encode, sha256
from repro.crypto.signatures import Signature, SigningKey, sign, verify_with_key
from repro.exceptions import UnknownIdentityError
from repro.obs import MetricsRegistry, NULL_REGISTRY

#: Sentinel distinguishing "not cached" from a cached ``False`` verdict.
_MISS = object()

__all__ = ["Role", "NodeRecord", "IdentityManager"]


class Role(enum.Enum):
    """The three node roles of the hierarchical model (plus the IM itself)."""

    PROVIDER = "provider"
    COLLECTOR = "collector"
    GOVERNOR = "governor"


@dataclass(frozen=True)
class NodeRecord:
    """The IM's record for one enrolled member."""

    node_id: str
    role: Role
    key: SigningKey

    def fingerprint(self) -> str:
        """Public identifier of the member's credential."""
        return self.key.fingerprint()


@dataclass
class IdentityManager:
    """Trusted membership service: enrolment, credentials, verification.

    The IM is a *trusted* component in the permissioned setting, so the
    simulation keeps all secrets in one registry; nodes only ever receive
    their own :class:`SigningKey`.

    Verification is memoized in a bounded LRU keyed on
    ``(signer, payload digest, tag)``: the r-fold collector fan-out and
    the per-governor re-verification of the same upload hit the cache
    instead of redoing identical HMACs.  The cache is sound because
    credentials are immutable once enrolled (re-enrolment of an id
    raises), and it can be force-disabled via
    :data:`repro.perf.ACTIVE` ``.signature_cache``.

    Args:
        seed: Seed for credential generation, for reproducible runs.
        obs: Metrics registry receiving the ``crypto_sig_cache_*``
            hit/miss counters (defaults to the no-op registry).
    """

    #: Maximum number of cached verification verdicts before LRU eviction.
    VERIFY_CACHE_SIZE = 1 << 16

    seed: int = 0
    _records: dict[str, NodeRecord] = field(default_factory=dict)
    _links: dict[str, set[str]] = field(default_factory=dict)
    obs: MetricsRegistry = field(default=NULL_REGISTRY, repr=False, compare=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._verify_cache: OrderedDict[tuple[str, bytes, bytes], bool] = OrderedDict()
        self._m_sig_hits = self.obs.counter(
            "crypto_sig_cache_hits",
            "Identity Manager verification-cache hits (HMAC skipped)",
        )
        self._m_sig_misses = self.obs.counter(
            "crypto_sig_cache_misses",
            "Identity Manager verification-cache misses (full HMAC recomputed)",
        )

    # -- enrolment ----------------------------------------------------

    def enroll(self, node_id: str, role: Role) -> SigningKey:
        """Register a member and return its signing credential.

        Raises:
            UnknownIdentityError: if ``node_id`` is already enrolled
                (identities are unique within the alliance).
        """
        if node_id in self._records:
            raise UnknownIdentityError(f"node {node_id!r} already enrolled")
        secret = self._rng.bytes(32)
        key = SigningKey(owner=node_id, secret=secret)
        self._records[node_id] = NodeRecord(node_id=node_id, role=role, key=key)
        return key

    def register_link(self, collector_id: str, provider_id: str) -> None:
        """Record that ``collector_id`` is linked with ``provider_id``.

        The paper's ``verify`` rejects a collector message whose embedded
        provider signature names a provider the collector is *not* linked
        with; the IM is the natural owner of that link table.
        """
        self.record(collector_id)  # raises if unknown
        self.record(provider_id)
        self._links.setdefault(collector_id, set()).add(provider_id)

    # -- queries ------------------------------------------------------

    def record(self, node_id: str) -> NodeRecord:
        """The enrolment record for ``node_id``.

        Raises:
            UnknownIdentityError: if the node was never enrolled.
        """
        try:
            return self._records[node_id]
        except KeyError:
            raise UnknownIdentityError(f"node {node_id!r} is not enrolled") from None

    def is_enrolled(self, node_id: str) -> bool:
        """Whether ``node_id`` is a member of the chain."""
        return node_id in self._records

    def role_of(self, node_id: str) -> Role:
        """Role the member was enrolled with."""
        return self.record(node_id).role

    def members(self, role: Role | None = None) -> Iterator[str]:
        """Iterate enrolled node ids, optionally filtered by role."""
        for node_id, rec in self._records.items():
            if role is None or rec.role is role:
                yield node_id

    def links_of(self, collector_id: str) -> frozenset[str]:
        """The providers a collector is registered as linked with."""
        return frozenset(self._links.get(collector_id, frozenset()))

    def is_linked(self, collector_id: str, provider_id: str) -> bool:
        """Whether the IM knows a collector-provider link."""
        return provider_id in self._links.get(collector_id, ())

    # -- authentication -----------------------------------------------

    def sign_as(self, node_id: str, message: Any) -> Signature:
        """Sign on behalf of an enrolled node (test/simulation helper)."""
        return sign(self.record(node_id).key, message)

    def verify(self, sender_id: str, message: Any, signature: Signature) -> bool:
        """The paper's ``verify(d, m)``: authenticate ``message`` from ``d``.

        Returns False when the signature does not check out against the
        registered credential of ``sender_id`` or the sender is unknown.
        The collector-specific embedded-provider rule is implemented by
        :meth:`verify_collector_upload` because it needs the message
        structure, not just bytes.
        """
        record = self._records.get(sender_id)
        if record is None:
            return False
        if not perf.ACTIVE.signature_cache:
            return verify_with_key(record.key, message, signature)
        if signature.signer != sender_id:
            return False  # verify_with_key rejects this unconditionally
        raw = message if isinstance(message, bytes) else canonical_encode(message)
        key = (sender_id, sha256(raw), signature.tag)
        cache = self._verify_cache
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            cache.move_to_end(key)
            self._m_sig_hits.inc()
            return cached  # type: ignore[return-value]
        # Credentials are immutable, so both verdicts are cacheable.
        result = verify_with_key(record.key, raw, signature)
        self._m_sig_misses.inc()
        cache[key] = result
        if len(cache) > self.VERIFY_CACHE_SIZE:
            cache.popitem(last=False)
        return result

    def verify_batch(
        self, items: Iterable[tuple[str, Any, Signature]]
    ) -> list[bool]:
        """Verify many ``(sender_id, message, signature)`` triples at once.

        Drains the whole batch through the verification cache so
        duplicate payloads — the r-fold collector fan-out delivering the
        same provider signature to every linked collector, or every
        governor re-checking the same upload — cost one HMAC total.
        Returns one verdict per triple, in input order.
        """
        return [
            self.verify(sender_id, message, signature)
            for sender_id, message, signature in items
        ]

    def verify_collector_upload(
        self,
        collector_id: str,
        message: Any,
        signature: Signature,
        embedded_provider: str,
        embedded_signature: Signature,
        embedded_message: Any,
    ) -> bool:
        """Full ``verify`` for collector uploads.

        Checks, per Section 3.1: (1) the collector's own signature over
        the upload, (2) that the upload embeds a provider signature that
        verifies, and (3) that the collector is linked with that provider.
        """
        if not self.verify(collector_id, message, signature):
            return False
        if not self.is_linked(collector_id, embedded_provider):
            return False
        return self.verify(embedded_provider, embedded_message, embedded_signature)

    def export_directory(self) -> Mapping[str, str]:
        """Public directory: node id -> role name (no secrets)."""
        return {nid: rec.role.value for nid, rec in self._records.items()}
