"""Identity Manager (IM) — the permissioning substrate.

Section 3.1 of the paper: *"an Identity Manager (IM) is responsible for
recording the members of the chain as well as their roles. Meanwhile, it
is in charge of providing nodes credentials that are used for
authenticating and authorizing. As a default, an IM should contain all
standard PKI methods and play the role of a Certificate Authority."*

The :class:`IdentityManager` here is that component: it enrolls nodes
with a role, issues signing credentials, and offers a global
``verify(d, m)`` matching the paper's function — including the extra
collector rule that a collector-uploaded message must carry a signature
by a provider that collector is actually linked with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.crypto.signatures import Signature, SigningKey, sign, verify_with_key
from repro.exceptions import UnknownIdentityError

__all__ = ["Role", "NodeRecord", "IdentityManager"]


class Role(enum.Enum):
    """The three node roles of the hierarchical model (plus the IM itself)."""

    PROVIDER = "provider"
    COLLECTOR = "collector"
    GOVERNOR = "governor"


@dataclass(frozen=True)
class NodeRecord:
    """The IM's record for one enrolled member."""

    node_id: str
    role: Role
    key: SigningKey

    def fingerprint(self) -> str:
        """Public identifier of the member's credential."""
        return self.key.fingerprint()


@dataclass
class IdentityManager:
    """Trusted membership service: enrolment, credentials, verification.

    The IM is a *trusted* component in the permissioned setting, so the
    simulation keeps all secrets in one registry; nodes only ever receive
    their own :class:`SigningKey`.

    Args:
        seed: Seed for credential generation, for reproducible runs.
    """

    seed: int = 0
    _records: dict[str, NodeRecord] = field(default_factory=dict)
    _links: dict[str, set[str]] = field(default_factory=dict)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # -- enrolment ----------------------------------------------------

    def enroll(self, node_id: str, role: Role) -> SigningKey:
        """Register a member and return its signing credential.

        Raises:
            UnknownIdentityError: if ``node_id`` is already enrolled
                (identities are unique within the alliance).
        """
        if node_id in self._records:
            raise UnknownIdentityError(f"node {node_id!r} already enrolled")
        secret = self._rng.bytes(32)
        key = SigningKey(owner=node_id, secret=secret)
        self._records[node_id] = NodeRecord(node_id=node_id, role=role, key=key)
        return key

    def register_link(self, collector_id: str, provider_id: str) -> None:
        """Record that ``collector_id`` is linked with ``provider_id``.

        The paper's ``verify`` rejects a collector message whose embedded
        provider signature names a provider the collector is *not* linked
        with; the IM is the natural owner of that link table.
        """
        self.record(collector_id)  # raises if unknown
        self.record(provider_id)
        self._links.setdefault(collector_id, set()).add(provider_id)

    # -- queries ------------------------------------------------------

    def record(self, node_id: str) -> NodeRecord:
        """The enrolment record for ``node_id``.

        Raises:
            UnknownIdentityError: if the node was never enrolled.
        """
        try:
            return self._records[node_id]
        except KeyError:
            raise UnknownIdentityError(f"node {node_id!r} is not enrolled") from None

    def is_enrolled(self, node_id: str) -> bool:
        """Whether ``node_id`` is a member of the chain."""
        return node_id in self._records

    def role_of(self, node_id: str) -> Role:
        """Role the member was enrolled with."""
        return self.record(node_id).role

    def members(self, role: Role | None = None) -> Iterator[str]:
        """Iterate enrolled node ids, optionally filtered by role."""
        for node_id, rec in self._records.items():
            if role is None or rec.role is role:
                yield node_id

    def links_of(self, collector_id: str) -> frozenset[str]:
        """The providers a collector is registered as linked with."""
        return frozenset(self._links.get(collector_id, frozenset()))

    def is_linked(self, collector_id: str, provider_id: str) -> bool:
        """Whether the IM knows a collector-provider link."""
        return provider_id in self._links.get(collector_id, ())

    # -- authentication -----------------------------------------------

    def sign_as(self, node_id: str, message: Any) -> Signature:
        """Sign on behalf of an enrolled node (test/simulation helper)."""
        return sign(self.record(node_id).key, message)

    def verify(self, sender_id: str, message: Any, signature: Signature) -> bool:
        """The paper's ``verify(d, m)``: authenticate ``message`` from ``d``.

        Returns False when the signature does not check out against the
        registered credential of ``sender_id`` or the sender is unknown.
        The collector-specific embedded-provider rule is implemented by
        :meth:`verify_collector_upload` because it needs the message
        structure, not just bytes.
        """
        if sender_id not in self._records:
            return False
        return verify_with_key(self._records[sender_id].key, message, signature)

    def verify_collector_upload(
        self,
        collector_id: str,
        message: Any,
        signature: Signature,
        embedded_provider: str,
        embedded_signature: Signature,
        embedded_message: Any,
    ) -> bool:
        """Full ``verify`` for collector uploads.

        Checks, per Section 3.1: (1) the collector's own signature over
        the upload, (2) that the upload embeds a provider signature that
        verifies, and (3) that the collector is linked with that provider.
        """
        if not self.verify(collector_id, message, signature):
            return False
        if not self.is_linked(collector_id, embedded_provider):
            return False
        return self.verify(embedded_provider, embedded_message, embedded_signature)

    def export_directory(self) -> Mapping[str, str]:
        """Public directory: node id -> role name (no secrets)."""
        return {nid: rec.role.value for nid, rec in self._records.items()}
