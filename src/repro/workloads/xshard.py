"""Cross-shard traffic mix.

:class:`CrossShardWorkload` wraps any
:class:`~repro.workloads.generator.WorkloadGenerator` and, with
probability ``p_cross`` per transaction, assigns a counterparty
provider drawn uniformly from the *other* shards.  The payload is
wrapped as ``{"xshard_to": counterparty, "body": original}`` — the
marker the :class:`~repro.sharding.ShardCoordinator` scans committed
blocks for when deciding which records need a receipt relayed.  The
protocol engines themselves never inspect it: a cross-shard transaction
is an ordinary transaction on its home shard.

Deterministic: counterparty draws come from this wrapper's own seeded
RNG, independent of the inner workload's validity stream.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import ConfigurationError
from repro.workloads.generator import TxSpec, WorkloadGenerator

__all__ = ["CrossShardWorkload"]


class CrossShardWorkload:
    """Decorate a workload with an ``p_cross`` cross-shard counterparty mix."""

    def __init__(
        self,
        inner: WorkloadGenerator,
        provider_shard: Mapping[str, int],
        p_cross: float = 0.1,
        seed: int = 0,
    ):
        if not 0.0 <= p_cross <= 1.0:
            raise ConfigurationError(f"p_cross must be in [0, 1], got {p_cross}")
        missing = [p for p in inner.providers if p not in provider_shard]
        if missing:
            raise ConfigurationError(f"providers with no shard: {missing}")
        if len(set(provider_shard.values())) < 2 and p_cross > 0:
            raise ConfigurationError("cross-shard traffic needs at least two shards")
        self.inner = inner
        self.p_cross = p_cross
        self.rng = np.random.default_rng(seed)
        self.provider_shard = dict(provider_shard)
        # shard -> its providers, in the deterministic map order.
        self._by_shard: dict[int, list[str]] = {}
        for provider, shard in self.provider_shard.items():
            self._by_shard.setdefault(shard, []).append(provider)

    def take(self, n: int) -> list[TxSpec]:
        """The next ``n`` transactions, a ``p_cross`` share cross-shard."""
        specs = []
        for spec in self.inner.take(n):
            if self.p_cross > 0 and self.rng.random() < self.p_cross:
                specs.append(self._crossed(spec))
            else:
                specs.append(spec)
        return specs

    def _crossed(self, spec: TxSpec) -> TxSpec:
        home = self.provider_shard[spec.provider]
        remote = [
            p
            for shard, members in sorted(self._by_shard.items())
            if shard != home
            for p in members
        ]
        counterparty = remote[int(self.rng.integers(len(remote)))]
        return TxSpec(
            provider=spec.provider,
            payload={"xshard_to": counterparty, "body": spec.payload},
            is_valid=spec.is_valid,
            counterparty=counterparty,
        )
