"""Workload generators and arrival processes."""

from repro.workloads.arrivals import (
    ArrivalProcess,
    ConstantArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workloads.replay import (
    RecordingWorkload,
    ReplayWorkload,
    dump_specs,
    load_specs,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, build_engine, scenario_names
from repro.workloads.generator import (
    BernoulliWorkload,
    BurstyWorkload,
    PerProviderWorkload,
    TxSpec,
    WorkloadGenerator,
)

__all__ = [
    "ArrivalProcess",
    "BernoulliWorkload",
    "BurstyWorkload",
    "ConstantArrivals",
    "DiurnalArrivals",
    "PerProviderWorkload",
    "PoissonArrivals",
    "RecordingWorkload",
    "ReplayWorkload",
    "SCENARIOS",
    "Scenario",
    "TxSpec",
    "WorkloadGenerator",
    "build_engine",
    "dump_specs",
    "load_specs",
    "scenario_names",
]
