"""Synthetic transaction workloads.

A workload is a deterministic (seeded) stream of :class:`TxSpec`
entries: which provider emits the transaction, its application payload,
and its ground-truth validity.  The protocol engine signs and routes
them; the ground truth feeds the shared validity oracle.

Validity models:

* ``bernoulli`` — each transaction is valid i.i.d. with ``p_valid``
  (the theorem setting);
* ``per_provider`` — each provider has his own validity rate, drawn
  once from a Beta distribution (heterogeneous data quality, as in the
  insurance use case where some policyholders systematically misstate);
* ``bursty`` — validity flips between a good and a bad regime with a
  Markov switch (stress for the reputation update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["TxSpec", "WorkloadGenerator", "BernoulliWorkload", "PerProviderWorkload", "BurstyWorkload"]


@dataclass(frozen=True)
class TxSpec:
    """One workload entry: who sends what, and whether it is valid.

    ``counterparty`` names another provider the transaction settles
    against; when that provider lives on a different shard of a sharded
    deployment the transaction is cross-shard (committed at home, then
    receipt-committed on the counterparty's shard).  ``None`` — the
    default, and the only value non-sharded runs ever see — means the
    transaction is purely local.
    """

    provider: str
    payload: object
    is_valid: bool
    counterparty: str | None = None


class WorkloadGenerator:
    """Base class: round-robin provider choice + a validity model."""

    def __init__(self, providers: Sequence[str], seed: int = 0):
        if not providers:
            raise ConfigurationError("workload needs at least one provider")
        self.providers = list(providers)
        self.rng = np.random.default_rng(seed)
        self._count = 0

    def _validity(self, provider: str) -> bool:
        raise NotImplementedError

    def _payload(self, provider: str, index: int) -> object:
        return {"seq": index, "from": provider}

    def take(self, n: int) -> list[TxSpec]:
        """The next ``n`` transactions."""
        return [self._one() for _ in range(n)]

    def _one(self) -> TxSpec:
        provider = self.providers[self._count % len(self.providers)]
        spec = TxSpec(
            provider=provider,
            payload=self._payload(provider, self._count),
            is_valid=self._validity(provider),
        )
        self._count += 1
        return spec

    def stream(self) -> Iterator[TxSpec]:
        """An endless transaction stream."""
        while True:
            yield self._one()


class BernoulliWorkload(WorkloadGenerator):
    """I.i.d. validity with probability ``p_valid`` (the theorem setting)."""

    def __init__(self, providers: Sequence[str], p_valid: float = 0.5, seed: int = 0):
        super().__init__(providers, seed)
        if not 0.0 <= p_valid <= 1.0:
            raise ConfigurationError(f"p_valid must be in [0, 1], got {p_valid}")
        self.p_valid = p_valid

    def _validity(self, provider: str) -> bool:
        return bool(self.rng.random() < self.p_valid)


class PerProviderWorkload(WorkloadGenerator):
    """Each provider has his own validity rate ~ Beta(a, b), drawn once."""

    def __init__(
        self,
        providers: Sequence[str],
        alpha: float = 8.0,
        beta: float = 2.0,
        seed: int = 0,
        rates: dict[str, float] | None = None,
    ):
        super().__init__(providers, seed)
        if alpha <= 0 or beta <= 0:
            raise ConfigurationError("Beta distribution parameters must be positive")
        if rates is None:
            # Default: rates drawn up-front from the validity stream —
            # the historical behaviour every golden run pins.
            self.rates = {
                p: float(self.rng.beta(alpha, beta)) for p in self.providers
            }
        else:
            # Injected rates (e.g. the streaming subsystem's lazily
            # derived per-provider rates) leave the validity stream
            # untouched: no up-front Beta draws are consumed.
            missing = [p for p in self.providers if p not in rates]
            if missing:
                raise ConfigurationError(
                    f"rates missing for providers: {missing[:5]}"
                )
            self.rates = {p: float(rates[p]) for p in self.providers}

    def _validity(self, provider: str) -> bool:
        return bool(self.rng.random() < self.rates[provider])


@dataclass
class _Regime:
    p_valid: float
    stay: float


class BurstyWorkload(WorkloadGenerator):
    """Markov-switching validity: a good regime and a bad regime.

    Args:
        p_good / p_bad: Validity rates in each regime.
        stay: Probability of remaining in the current regime per tx.
    """

    def __init__(
        self,
        providers: Sequence[str],
        p_good: float = 0.95,
        p_bad: float = 0.2,
        stay: float = 0.98,
        seed: int = 0,
    ):
        super().__init__(providers, seed)
        for name, p in (("p_good", p_good), ("p_bad", p_bad), ("stay", stay)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self._regimes = (_Regime(p_good, stay), _Regime(p_bad, stay))
        self._state = 0

    def _validity(self, provider: str) -> bool:
        regime = self._regimes[self._state]
        if self.rng.random() >= regime.stay:
            self._state = 1 - self._state
            regime = self._regimes[self._state]
        return bool(self.rng.random() < regime.p_valid)
