"""Arrival processes: how many transactions enter per round.

The paper's rounds pack up to ``b_limit`` transactions; the arrival
process controls offered load.  Four standard models:

* :class:`ConstantArrivals` — fixed batch per round;
* :class:`PoissonArrivals` — Poisson(rate) per round, the classic
  open-loop model;
* :class:`DiurnalArrivals` — sinusoidally modulated Poisson, matching
  the car-sharing scenario's rush hours;
* :class:`BurstyArrivals` — two-state (background / burst) modulated
  Poisson, the flash-sale spike model.

Each process derives its randomness from ``SeedSequence([seed, TAG])``
with a per-class stream tag, so two processes built from the same seed
— or a process composed with a workload generator seeded identically —
draw from decorrelated streams and never perturb each other's counts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "DiurnalArrivals",
    "BurstyArrivals",
]

#: Per-class stream tags: spawn keys for ``SeedSequence([seed, TAG])``.
#: Frozen constants — changing one changes every seeded arrival stream.
_POISSON_TAG = 0x41525231  # "ARR1"
_DIURNAL_TAG = 0x41525232  # "ARR2"
_BURSTY_TAG = 0x41525233  # "ARR3"


def _stream_rng(seed: int, tag: int) -> np.random.Generator:
    """A generator keyed by (seed, stream-tag), decorrelated across tags."""
    return np.random.default_rng(np.random.SeedSequence([seed, tag]))


class ArrivalProcess:
    """Base: per-round transaction counts."""

    def count_for_round(self, round_number: int) -> int:
        """How many transactions arrive in ``round_number`` (>= 0)."""
        raise NotImplementedError


class ConstantArrivals(ArrivalProcess):
    """Exactly ``batch`` transactions every round."""

    def __init__(self, batch: int):
        if batch < 0:
            raise ConfigurationError(f"batch cannot be negative, got {batch}")
        self.batch = batch

    def count_for_round(self, round_number: int) -> int:
        return self.batch


class PoissonArrivals(ArrivalProcess):
    """Poisson(rate) arrivals per round."""

    def __init__(self, rate: float, seed: int = 0):
        if rate < 0:
            raise ConfigurationError(f"rate cannot be negative, got {rate}")
        self.rate = rate
        self.rng = _stream_rng(seed, _POISSON_TAG)

    def count_for_round(self, round_number: int) -> int:
        return int(self.rng.poisson(self.rate))


class DiurnalArrivals(ArrivalProcess):
    """Poisson with a sinusoidal day cycle: rate * (1 + amp * sin)."""

    def __init__(self, rate: float, period: int = 24, amplitude: float = 0.5, seed: int = 0):
        if rate < 0:
            raise ConfigurationError(f"rate cannot be negative, got {rate}")
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError(f"amplitude must be in [0, 1], got {amplitude}")
        self.rate = rate
        self.period = period
        self.amplitude = amplitude
        self.rng = _stream_rng(seed, _DIURNAL_TAG)

    def count_for_round(self, round_number: int) -> int:
        phase = 2.0 * math.pi * (round_number % self.period) / self.period
        lam = self.rate * (1.0 + self.amplitude * math.sin(phase))
        return int(self.rng.poisson(max(lam, 0.0)))


class BurstyArrivals(ArrivalProcess):
    """Two-state modulated Poisson: quiet background, then flash bursts.

    A seeded Markov chain switches between a ``rate`` background and a
    ``burst_rate`` episode; ``p_burst`` is the per-round chance a burst
    starts, ``p_end`` the per-round chance it ends.  The flash-sale
    ticketing oracle drives its on-sale spikes with this.
    """

    def __init__(
        self,
        rate: float,
        burst_rate: float,
        p_burst: float = 0.05,
        p_end: float = 0.25,
        seed: int = 0,
    ):
        if rate < 0:
            raise ConfigurationError(f"rate cannot be negative, got {rate}")
        if burst_rate < rate:
            raise ConfigurationError(
                f"burst_rate must be >= rate, got {burst_rate} < {rate}"
            )
        for name, p in (("p_burst", p_burst), ("p_end", p_end)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self.rate = rate
        self.burst_rate = burst_rate
        self.p_burst = p_burst
        self.p_end = p_end
        self.rng = _stream_rng(seed, _BURSTY_TAG)
        self._bursting = False

    def count_for_round(self, round_number: int) -> int:
        # One switch draw then one count draw per round, burst or not,
        # so the stream position is independent of the path taken.
        switch = self.rng.random()
        if self._bursting:
            if switch < self.p_end:
                self._bursting = False
        elif switch < self.p_burst:
            self._bursting = True
        lam = self.burst_rate if self._bursting else self.rate
        return int(self.rng.poisson(lam))

    @property
    def bursting(self) -> bool:
        """Whether the process is currently inside a burst episode."""
        return self._bursting
