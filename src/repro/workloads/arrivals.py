"""Arrival processes: how many transactions enter per round.

The paper's rounds pack up to ``b_limit`` transactions; the arrival
process controls offered load.  Three standard models:

* :class:`ConstantArrivals` — fixed batch per round;
* :class:`PoissonArrivals` — Poisson(rate) per round, the classic
  open-loop model;
* :class:`DiurnalArrivals` — sinusoidally modulated Poisson, matching
  the car-sharing scenario's rush hours.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ArrivalProcess", "ConstantArrivals", "PoissonArrivals", "DiurnalArrivals"]


class ArrivalProcess:
    """Base: per-round transaction counts."""

    def count_for_round(self, round_number: int) -> int:
        """How many transactions arrive in ``round_number`` (>= 0)."""
        raise NotImplementedError


class ConstantArrivals(ArrivalProcess):
    """Exactly ``batch`` transactions every round."""

    def __init__(self, batch: int):
        if batch < 0:
            raise ConfigurationError(f"batch cannot be negative, got {batch}")
        self.batch = batch

    def count_for_round(self, round_number: int) -> int:
        return self.batch


class PoissonArrivals(ArrivalProcess):
    """Poisson(rate) arrivals per round."""

    def __init__(self, rate: float, seed: int = 0):
        if rate < 0:
            raise ConfigurationError(f"rate cannot be negative, got {rate}")
        self.rate = rate
        self.rng = np.random.default_rng(seed)

    def count_for_round(self, round_number: int) -> int:
        return int(self.rng.poisson(self.rate))


class DiurnalArrivals(ArrivalProcess):
    """Poisson with a sinusoidal day cycle: rate * (1 + amp * sin)."""

    def __init__(self, rate: float, period: int = 24, amplitude: float = 0.5, seed: int = 0):
        if rate < 0:
            raise ConfigurationError(f"rate cannot be negative, got {rate}")
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError(f"amplitude must be in [0, 1], got {amplitude}")
        self.rate = rate
        self.period = period
        self.amplitude = amplitude
        self.rng = np.random.default_rng(seed)

    def count_for_round(self, round_number: int) -> int:
        phase = 2.0 * math.pi * (round_number % self.period) / self.period
        lam = self.rate * (1.0 + self.amplitude * math.sin(phase))
        return int(self.rng.poisson(max(lam, 0.0)))
