"""Trace-recorded workloads: capture a transaction stream, replay it later.

Reproducing an anomaly often means re-running the *exact* transaction
stream that triggered it — same providers, same payloads, same ground
truths — possibly under different protocol parameters or behaviours.
:class:`RecordingWorkload` wraps any generator and captures what it
emitted; :func:`dump_specs` / :func:`load_specs` persist the capture as
JSONL; :class:`ReplayWorkload` feeds it back, erroring loudly if the
consumer over-reads.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Sequence, TextIO

from repro.exceptions import ConfigurationError
from repro.workloads.generator import TxSpec, WorkloadGenerator

__all__ = ["RecordingWorkload", "ReplayWorkload", "dump_specs", "load_specs"]


class RecordingWorkload:
    """Wrap a generator; remember every spec it hands out."""

    def __init__(self, inner: WorkloadGenerator):
        self.inner = inner
        self.recorded: list[TxSpec] = []

    def take(self, n: int) -> list[TxSpec]:
        """Delegate and record."""
        specs = self.inner.take(n)
        self.recorded.extend(specs)
        return specs

    def stream(self) -> Iterator[TxSpec]:
        """Delegate and record, one at a time."""
        for spec in self.inner.stream():
            self.recorded.append(spec)
            yield spec


class ReplayWorkload:
    """Hand back a previously captured stream, in order.

    Raises:
        ConfigurationError: when more transactions are requested than
            were recorded — silently re-generating different traffic is
            exactly the bug this class exists to prevent.
    """

    def __init__(self, specs: Sequence[TxSpec]):
        self._specs = list(specs)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def remaining(self) -> int:
        """Specs not yet replayed."""
        return len(self._specs) - self._cursor

    def take(self, n: int) -> list[TxSpec]:
        """The next ``n`` recorded specs."""
        if n > self.remaining:
            raise ConfigurationError(
                f"replay exhausted: asked for {n}, only {self.remaining} recorded "
                f"specs remain"
            )
        out = self._specs[self._cursor : self._cursor + n]
        self._cursor += n
        return out

    def rewind(self) -> None:
        """Restart the replay from the beginning."""
        self._cursor = 0


def dump_specs(specs: Iterable[TxSpec], fp: TextIO) -> int:
    """Write specs as JSONL; returns the line count."""
    count = 0
    for spec in specs:
        fp.write(
            json.dumps(
                {
                    "provider": spec.provider,
                    "payload": spec.payload,
                    "is_valid": spec.is_valid,
                },
                sort_keys=True,
            )
        )
        fp.write("\n")
        count += 1
    return count


def load_specs(lines: Iterable[str]) -> list[TxSpec]:
    """Parse JSONL back into specs.

    Raises:
        ConfigurationError: on malformed lines or missing fields.
    """
    specs: list[TxSpec] = []
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
            specs.append(
                TxSpec(
                    provider=obj["provider"],
                    payload=obj["payload"],
                    is_valid=bool(obj["is_valid"]),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ConfigurationError(f"bad spec at line {i}: {exc}") from exc
    return specs
