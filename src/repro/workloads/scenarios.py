"""Named end-to-end scenarios: reproducible experiment presets.

A scenario bundles everything a full-protocol run needs — topology
shape, parameters, collector behaviours, workload, stake split, rounds —
under a name, so benches, the CLI, and downstream users launch identical
configurations.  :func:`build_engine` materialises a scenario into a
ready :class:`~repro.core.protocol.ProtocolEngine` plus its workload.

The registry covers the configurations the experiments use:

* ``smoke`` — tiny and fast, for CI sanity;
* ``paper-default`` — the Figure-1 shape (r = 8 collectors per provider
  slice) with the standard 2-honest/6-adversarial mix;
* ``hostile-majority`` — most collectors invert labels;
* ``sleeper-attack`` — reputation farming then defection;
* ``forgery-storm`` — aggressive fabrication attempts;
* ``carsharing-rush`` / ``insurance-fraud`` — the Section-5 domains'
  protocol-level equivalents (diurnal load / directional whitewashing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    CollectorBehavior,
    ConcealBehavior,
    ForgeBehavior,
    MisreportBehavior,
    SleeperBehavior,
)
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology
from repro.workloads.generator import (
    BernoulliWorkload,
    BurstyWorkload,
    PerProviderWorkload,
    WorkloadGenerator,
)

__all__ = [
    "Scenario",
    "SCENARIOS",
    "DurableScenario",
    "DURABLE_SCENARIOS",
    "ShardScenario",
    "SHARD_SCENARIOS",
    "scenario_names",
    "durable_scenario_names",
    "shard_scenario_names",
    "build_engine",
    "build_durable_engine",
    "build_shard_deployment",
]


@dataclass(frozen=True)
class Scenario:
    """One named experiment preset."""

    name: str
    description: str
    l: int
    n: int
    m: int
    r: int
    params: ProtocolParams
    rounds: int
    batch: int
    behavior_factory: Callable[[Topology], Mapping[str, CollectorBehavior]]
    workload_factory: Callable[[Topology, int], WorkloadGenerator]
    stake: Mapping[str, int] | None = None

    def topology(self) -> Topology:
        """The scenario's link structure."""
        return Topology.regular(l=self.l, n=self.n, m=self.m, r=self.r)


def _no_adversaries(_topo: Topology) -> dict:
    return {}


def _standard_mix(topo: Topology) -> dict:
    c = topo.collectors
    return {
        c[2]: MisreportBehavior(0.4),
        c[3]: ConcealBehavior(0.4),
        c[4]: AlwaysInvertBehavior(),
        c[5]: AlwaysInvertBehavior(),
        c[6]: MisreportBehavior(0.8),
        c[7]: ConcealBehavior(0.8),
    }


def _hostile_majority(topo: Topology) -> dict:
    return {c: AlwaysInvertBehavior() for c in topo.collectors[2:]}


def _sleepers(topo: Topology) -> dict:
    return {c: SleeperBehavior(honest_prefix=200) for c in topo.collectors[2:]}


def _forgers(topo: Topology) -> dict:
    return {c: ForgeBehavior(0.5) for c in topo.collectors[: topo.n // 2]}


def _whitewashers(topo: Topology) -> dict:
    # Directional misreporting like the insurance commission bias: model
    # with an aggressive misreporter population slice.
    return {c: MisreportBehavior(0.7) for c in topo.collectors[:2]}


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in [
        Scenario(
            name="smoke",
            description="tiny, fast sanity run",
            l=4, n=4, m=3, r=2,
            params=ProtocolParams(f=0.5),
            rounds=3, batch=8,
            behavior_factory=_no_adversaries,
            workload_factory=lambda topo, seed: BernoulliWorkload(
                topo.providers, p_valid=0.8, seed=seed
            ),
        ),
        Scenario(
            name="paper-default",
            description="Figure-1 shape with the standard adversary mix",
            l=16, n=8, m=4, r=4,
            params=ProtocolParams(f=0.5, beta=0.9),
            rounds=25, batch=32,
            behavior_factory=_standard_mix,
            workload_factory=lambda topo, seed: BernoulliWorkload(
                topo.providers, p_valid=0.7, seed=seed
            ),
        ),
        Scenario(
            name="hostile-majority",
            description="6 of 8 collectors always invert labels",
            l=16, n=8, m=4, r=4,
            params=ProtocolParams(f=0.7, beta=0.9),
            rounds=25, batch=32,
            behavior_factory=_hostile_majority,
            workload_factory=lambda topo, seed: BernoulliWorkload(
                topo.providers, p_valid=0.6, seed=seed
            ),
        ),
        Scenario(
            name="sleeper-attack",
            description="reputation farming then coordinated defection",
            l=16, n=8, m=4, r=4,
            params=ProtocolParams(f=0.6, beta=0.9),
            rounds=40, batch=24,
            behavior_factory=_sleepers,
            workload_factory=lambda topo, seed: BernoulliWorkload(
                topo.providers, p_valid=0.7, seed=seed
            ),
        ),
        Scenario(
            name="forgery-storm",
            description="half the collectors fabricate transactions",
            l=16, n=8, m=4, r=4,
            params=ProtocolParams(f=0.5, nu=8.0),
            rounds=20, batch=24,
            behavior_factory=_forgers,
            workload_factory=lambda topo, seed: BernoulliWorkload(
                topo.providers, p_valid=0.8, seed=seed
            ),
        ),
        Scenario(
            name="carsharing-rush",
            description="bursty demand with regime-switching validity",
            l=24, n=8, m=4, r=4,
            params=ProtocolParams(f=0.6),
            rounds=30, batch=24,
            behavior_factory=_standard_mix,
            workload_factory=lambda topo, seed: BurstyWorkload(
                topo.providers, p_good=0.95, p_bad=0.3, stay=0.97, seed=seed
            ),
        ),
        Scenario(
            name="insurance-fraud",
            description="heterogeneous applicants, whitewashing agents",
            l=20, n=10, m=4, r=5,
            params=ProtocolParams(f=0.5, mu=3.0),
            rounds=30, batch=20,
            behavior_factory=_whitewashers,
            workload_factory=lambda topo, seed: PerProviderWorkload(
                topo.providers, alpha=6.0, beta=2.0, seed=seed
            ),
        ),
    ]
}


@dataclass(frozen=True)
class ShardScenario:
    """A named sharded-deployment preset.

    Materialised by :func:`build_shard_deployment` into a
    :class:`~repro.sharding.ShardCoordinator` plus a
    :class:`~repro.workloads.xshard.CrossShardWorkload`; the node
    counts are deployment-wide totals, split evenly across ``shards``.
    """

    name: str
    description: str
    l: int
    n: int
    m: int
    r: int
    shards: int
    params: ProtocolParams
    rounds: int
    #: Specs offered per super-round (router-buffered beyond capacity).
    batch: int
    p_cross: float
    epoch_rounds: int | None = None


SHARD_SCENARIOS: dict[str, ShardScenario] = {
    s.name: s
    for s in [
        ShardScenario(
            name="sharded-smoke",
            description="two tiny shards with light cross-shard traffic",
            l=8, n=4, m=4, r=2, shards=2,
            params=ProtocolParams(f=0.5, delta=0.2, b_limit=16),
            rounds=5, batch=16, p_cross=0.2,
        ),
        ShardScenario(
            name="sharded-quad",
            description="four shards, saturating load, epoch reshuffles",
            l=24, n=8, m=8, r=2, shards=4,
            params=ProtocolParams(f=0.5, delta=0.2, b_limit=16),
            rounds=12, batch=80, p_cross=0.15, epoch_rounds=4,
        ),
    ]
}


@dataclass(frozen=True)
class DurableScenario:
    """A named durable-ledger preset for the networked engine.

    Materialised by :func:`build_durable_engine`; the same preset run
    with ``storage_dir=None`` is the in-memory control that durable runs
    must match bit-for-bit (tip hash), which is what the kill-restart
    chaos harness asserts.
    """

    name: str
    description: str
    l: int
    n: int
    m: int
    r: int
    params: ProtocolParams
    rounds: int
    batch: int
    max_delay: float
    checkpoint_interval: int
    segment_bytes: int


DURABLE_SCENARIOS: dict[str, DurableScenario] = {
    s.name: s
    for s in [
        DurableScenario(
            name="durable-smoke",
            description="small networked run committing to a segment log",
            l=8, n=4, m=3, r=2,
            params=ProtocolParams(f=0.5, delta=0.2),
            rounds=6, batch=8, max_delay=0.05,
            checkpoint_interval=2, segment_bytes=4096,
        ),
        DurableScenario(
            name="durable-soak",
            description="longer durable run with frequent checkpoints",
            l=12, n=6, m=3, r=3,
            params=ProtocolParams(f=0.5, delta=0.2),
            rounds=20, batch=12, max_delay=0.05,
            checkpoint_interval=4, segment_bytes=8192,
        ),
    ]
}


def scenario_names() -> list[str]:
    """All registered scenario names."""
    return sorted(SCENARIOS)


def durable_scenario_names() -> list[str]:
    """All registered durable-scenario names."""
    return sorted(DURABLE_SCENARIOS)


def build_durable_engine(name: str, seed: int = 0, storage_dir=None):
    """Materialise a named durable scenario on the networked engine.

    With ``storage_dir`` set, the engine opens (and, on restart,
    recovers) a :class:`~repro.storage.DurableBlockStore` in that
    directory; with ``None`` it runs the identical configuration purely
    in memory — the bit-identical control for recovery tests.

    Returns:
        ``(engine, workload, scenario)``; run it with
        ``for _ in range(scenario.rounds):
        engine.run_round(workload.take(scenario.batch))``.

    Raises:
        ConfigurationError: unknown scenario name.
    """
    # Imported here: the networked engine stack (and with it the storage
    # package) is not needed by in-process scenario users.
    from repro.core.netengine import NetworkedProtocolEngine
    from repro.storage import StorageConfig

    scenario = DURABLE_SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown durable scenario {name!r}; available: {durable_scenario_names()}"
        )
    topo = Topology.regular(l=scenario.l, n=scenario.n, m=scenario.m, r=scenario.r)
    storage = (
        StorageConfig(
            directory=storage_dir,
            checkpoint_interval=scenario.checkpoint_interval,
            segment_bytes=scenario.segment_bytes,
        )
        if storage_dir is not None
        else None
    )
    engine = NetworkedProtocolEngine(
        topo,
        scenario.params,
        seed=seed,
        max_delay=scenario.max_delay,
        storage=storage,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=seed + 1)
    return engine, workload, scenario


def shard_scenario_names() -> list[str]:
    """All registered sharded-scenario names."""
    return sorted(SHARD_SCENARIOS)


def build_shard_deployment(name: str, seed: int = 0, workers: int | None = None):
    """Materialise a named sharded scenario.

    Args:
        workers: forwarded to :class:`~repro.sharding.ShardCoordinator` —
            ``None``/``1`` runs every shard engine in-process, ``>= 2``
            spawns that many worker processes (same seed, bit-identical
            ledgers, multi-core wall-clock).

    Returns:
        ``(coordinator, workload, scenario)``; run it with
        ``coordinator.submit(workload.take(scenario.batch))`` +
        ``coordinator.run_super_round()`` per round, then
        ``coordinator.finalize()``.

    Raises:
        ConfigurationError: unknown scenario name.
    """
    # Imported here: repro.sharding pulls in the networked engine stack,
    # which the in-process scenario users never need.
    from repro.sharding import ShardCoordinator
    from repro.workloads.xshard import CrossShardWorkload

    scenario = SHARD_SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown shard scenario {name!r}; available: {shard_scenario_names()}"
        )
    sharded = Topology.sharded(
        l=scenario.l, n=scenario.n, m=scenario.m, r=scenario.r,
        shards=scenario.shards,
    )
    coordinator = ShardCoordinator(
        sharded,
        scenario.params,
        seed=seed,
        epoch_rounds=scenario.epoch_rounds,
        workers=workers,
    )
    providers = [p for topo in sharded.shards for p in topo.providers]
    inner = BernoulliWorkload(providers, p_valid=0.8, seed=seed + 1)
    workload = CrossShardWorkload(
        inner, sharded.provider_shard, p_cross=scenario.p_cross, seed=seed + 2
    )
    return coordinator, workload, scenario


def build_engine(
    name: str, seed: int = 0
) -> tuple[ProtocolEngine, WorkloadGenerator, Scenario]:
    """Materialise a named scenario.

    Returns:
        (engine, workload, scenario); run it with
        ``for _ in range(scenario.rounds): engine.run_round(workload.take(scenario.batch))``.

    Raises:
        ConfigurationError: unknown scenario name.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    topo = scenario.topology()
    engine = ProtocolEngine(
        topo,
        scenario.params,
        behaviors=scenario.behavior_factory(topo),
        seed=seed,
        stake=dict(scenario.stake) if scenario.stake else None,
    )
    workload = scenario.workload_factory(topo, seed + 1)
    return engine, workload, scenario
