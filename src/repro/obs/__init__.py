"""repro.obs — the unified observability layer.

A dependency-free metrics registry (counters, gauges, histograms with
labels), sim-time span tracing, and a pluggable export layer
(Prometheus text / JSONL / dict snapshot).  Every instrumented
component takes an optional registry and defaults to the no-op
:data:`NULL_REGISTRY`, so un-instrumented runs stay bit-identical.

Quickstart::

    from repro.obs import MetricsRegistry, to_prometheus

    obs = MetricsRegistry()
    engine = NetworkedProtocolEngine(topo, params, obs=obs)
    engine.run_round(workload.take(8))
    print(to_prometheus(obs))          # every counter the run touched
    for span in obs.spans_of("round"): # where the sim time went
        print(span.name, span.duration)

The full telemetry reference (every metric name, span name, and the
``BENCH_*.json`` schema) lives in OBSERVABILITY.md.
"""

from repro.obs.export import snapshot, to_jsonl, to_prometheus, write_jsonl
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "snapshot",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]
