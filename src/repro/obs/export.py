"""Pluggable export layer: Prometheus text, JSONL, dict snapshot.

Three renderings of one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`to_prometheus` — the standard text exposition format, for
  eyeballs and for any Prometheus-compatible scraper;
* :func:`snapshot` — a nested plain-dict form, the shape embedded in
  the benches' ``BENCH_*.json`` files;
* :func:`to_jsonl` — one JSON object per sample and per span, for jq /
  pandas streaming (the same consumption style as ``RunTracer``).

All three are deterministic: metrics sort by name, series by label
values, spans keep record order.  See OBSERVABILITY.md for the schema
reference and consumption recipes.
"""

from __future__ import annotations

import json
import pathlib
from typing import TextIO

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus", "to_jsonl", "snapshot", "write_jsonl"]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{v}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for values, value in metric.samples():
                labels = _label_str(metric.label_names, values)
                lines.append(f"{metric.name}{labels} {_fmt(value)}")
        elif isinstance(metric, Histogram):
            for values, state in metric.samples():
                cumulative = 0
                for bound, count in zip(metric.buckets, state.bucket_counts):
                    cumulative += count
                    le = _label_str(
                        metric.label_names, values, extra=f'le="{_fmt(bound)}"'
                    )
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                le = _label_str(metric.label_names, values, extra='le="+Inf"')
                lines.append(f"{metric.name}_bucket{le} {state.count}")
                labels = _label_str(metric.label_names, values)
                lines.append(f"{metric.name}_sum{labels} {_fmt(state.sum)}")
                lines.append(f"{metric.name}_count{labels} {state.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry) -> dict:
    """The registry as a nested plain dict (JSON-ready).

    Shape (see OBSERVABILITY.md for the full schema)::

        {"metrics": {name: {"type", "help", "labels", "samples": [...]}},
         "spans": [{"span", "labels", "start", "end", "duration"}, ...]}
    """
    metrics: dict[str, dict] = {}
    for metric in registry.metrics():
        entry: dict = {
            "type": metric.kind,
            "help": metric.help,
            "labels": list(metric.label_names),
            "samples": [],
        }
        if isinstance(metric, (Counter, Gauge)):
            for values, value in metric.samples():
                entry["samples"].append(
                    {"labels": dict(zip(metric.label_names, values)), "value": value}
                )
        elif isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
            for values, state in metric.samples():
                entry["samples"].append(
                    {
                        "labels": dict(zip(metric.label_names, values)),
                        "bucket_counts": list(state.bucket_counts),
                        "sum": state.sum,
                        "count": state.count,
                    }
                )
        metrics[metric.name] = entry
    return {
        "metrics": metrics,
        "spans": [span.as_dict() for span in registry.spans],
    }


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per metric sample and per span, newline-delimited."""
    lines: list[str] = []
    for metric in registry.metrics():
        if isinstance(metric, (Counter, Gauge)):
            for values, value in metric.samples():
                lines.append(
                    json.dumps(
                        {
                            "metric": metric.name,
                            "type": metric.kind,
                            "labels": dict(zip(metric.label_names, values)),
                            "value": value,
                        },
                        sort_keys=True,
                    )
                )
        elif isinstance(metric, Histogram):
            for values, state in metric.samples():
                lines.append(
                    json.dumps(
                        {
                            "metric": metric.name,
                            "type": metric.kind,
                            "labels": dict(zip(metric.label_names, values)),
                            "buckets": list(metric.buckets),
                            "bucket_counts": list(state.bucket_counts),
                            "sum": state.sum,
                            "count": state.count,
                        },
                        sort_keys=True,
                    )
                )
    for span in registry.spans:
        lines.append(json.dumps(span.as_dict(), sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(registry: MetricsRegistry, fp: TextIO | str | pathlib.Path) -> int:
    """Stream :func:`to_jsonl` into ``fp`` (a path or an open text file).

    Returns the line count.
    """
    text = to_jsonl(registry)
    if isinstance(fp, (str, pathlib.Path)):
        pathlib.Path(fp).write_text(text)
    else:
        fp.write(text)
    return text.count("\n")
