"""Sim-time span tracing.

A :class:`Span` is one named interval of *simulated* time — a round, a
block pack, a recovery drain — with string labels.  Spans complement
the counters in :mod:`repro.obs.registry`: counters say *how much*,
spans say *where the sim time went*.

Spans are recorded through the registry so one object travels through
the stack::

    registry.bind_clock(lambda: sim.now)
    with registry.span("round", round="3", leader="g1"):
        ...  # simulated work; start/end read the bound clock

Deliberately minimal: no nesting bookkeeping, no ids — the (name,
labels, start, end) tuple plus record order is everything the analysis
recipes in OBSERVABILITY.md need, and nothing here can perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "SpanContext", "NULL_SPAN_CONTEXT"]


@dataclass(frozen=True)
class Span:
    """One closed interval of simulated time."""

    name: str
    labels: Mapping[str, str]
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Simulated seconds the span covered."""
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the JSONL exporter)."""
        return {
            "span": self.name,
            "labels": dict(self.labels),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }


class SpanContext:
    """Context manager that records one span on exit."""

    __slots__ = ("_registry", "_name", "_labels", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: dict):
        self._registry = registry
        self._name = name
        self._labels = labels

    def __enter__(self) -> "SpanContext":
        self._start = self._registry._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._registry.spans.append(
            Span(
                name=self._name,
                labels=self._labels,
                start=self._start,
                end=self._registry._now(),
            )
        )


class _NullSpanContext:
    """The disabled registry's span: records nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN_CONTEXT = _NullSpanContext()
