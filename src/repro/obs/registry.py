"""Typed metrics registry — counters, gauges, histograms with labels.

The observability layer the experiments and benches share.  Design
constraints, in order:

1. **Dependency-free and deterministic.**  Pure stdlib; no wall-clock
   reads anywhere.  Export ordering is fully deterministic (sorted by
   metric name, then label values), so two identical seeded runs
   produce byte-identical exports.
2. **A disabled registry is a no-op.**  Components accept an optional
   registry and default to :data:`NULL_REGISTRY`, whose metric handles
   swallow every call.  Instrumentation never draws randomness, never
   branches on metric values, and never reorders protocol work, so a
   seeded run's ledger and RNG consumption are bit-identical whether
   observability is off, on, or absent — the same convention as the
   fault machinery's ``resilience=False`` default.
3. **Prometheus-compatible naming.**  ``*_total`` counters, base-unit
   histograms, label sets declared at registration.  The exporters in
   :mod:`repro.obs.export` emit the standard text exposition format.

Metric registration is idempotent: asking for an already-registered
name with the same type and label names returns the existing metric
(many governors share one registry), while a conflicting re-registration
raises :class:`~repro.exceptions.ConfigurationError`.

Sim-time spans live on the same registry (see :mod:`repro.obs.spans`):
``registry.bind_clock(lambda: sim.now)`` once, then
``with registry.span("round", round="3"): ...`` wherever a phase should
be measured in simulated seconds.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Mapping

from repro.exceptions import ConfigurationError
from repro.obs.spans import NULL_SPAN_CONTEXT, Span, SpanContext

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default histogram buckets, tuned for simulated-seconds latencies
#: (network delays are 5-100 ms; retransmit backoffs reach a few
#: seconds).  Dimensionless histograms (block sizes, update magnitudes)
#: declare their own buckets.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _label_key(
    metric: "_Metric", values: Mapping[str, str]
) -> tuple[str, ...]:
    if set(values) != set(metric.label_names):
        raise ConfigurationError(
            f"metric {metric.name!r} takes labels {metric.label_names}, "
            f"got {tuple(sorted(values))}"
        )
    return tuple(str(values[name]) for name in metric.label_names)


class _Metric:
    """Shared machinery: one named metric with a fixed label schema."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]):
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: dict[tuple[str, ...], "_Metric"] = {}

    def labels(self, **values: str) -> "_Metric":
        """The child bound to one label-value combination (cached)."""
        key = _label_key(self, values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child(key)
            self._children[key] = child
        return child

    def _make_child(self, key: tuple[str, ...]) -> "_Metric":
        raise NotImplementedError

    def _require_unlabeled(self) -> None:
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name!r} needs labels {self.label_names}; "
                "call .labels(...) first"
            )

    def samples(self) -> Iterable[tuple[tuple[str, ...], object]]:
        """(label values, value) pairs in deterministic (sorted) order."""
        raise NotImplementedError

    def reset(self) -> None:
        """Zero every child (registrations survive)."""
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}
        if not label_names:
            self._values[()] = 0.0

    def _make_child(self, key: tuple[str, ...]) -> "_BoundCounter":
        self._values.setdefault(key, 0.0)
        return _BoundCounter(self, key)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the unlabeled series."""
        self._require_unlabeled()
        self._add((), amount)

    def _add(self, key: tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self._values[key] = self._values.get(key, 0.0) + amount

    @property
    def value(self) -> float:
        """The unlabeled series' current count."""
        self._require_unlabeled()
        return self._values.get((), 0.0)

    def value_of(self, **values: str) -> float:
        """One labeled series' current count (0 if never touched)."""
        return self._values.get(_label_key(self, values), 0.0)

    def samples(self) -> Iterable[tuple[tuple[str, ...], float]]:
        return sorted(self._values.items())

    def reset(self) -> None:
        for key in self._values:
            self._values[key] = 0.0


class _BoundCounter:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: tuple[str, ...]):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._add(self._key, amount)


class Gauge(_Metric):
    """A value that can go up and down (set to the latest observation)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()):
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}
        if not label_names:
            self._values[()] = 0.0

    def _make_child(self, key: tuple[str, ...]) -> "_BoundGauge":
        self._values.setdefault(key, 0.0)
        return _BoundGauge(self, key)

    def set(self, value: float) -> None:
        """Overwrite the unlabeled series."""
        self._require_unlabeled()
        self._values[()] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the unlabeled series by ``amount`` (may be negative)."""
        self._require_unlabeled()
        self._values[()] = self._values.get((), 0.0) + amount

    @property
    def value(self) -> float:
        """The unlabeled series' current value."""
        self._require_unlabeled()
        return self._values.get((), 0.0)

    def value_of(self, **values: str) -> float:
        """One labeled series' current value (0 if never set)."""
        return self._values.get(_label_key(self, values), 0.0)

    def samples(self) -> Iterable[tuple[tuple[str, ...], float]]:
        return sorted(self._values.items())

    def reset(self) -> None:
        for key in self._values:
            self._values[key] = 0.0


class _BoundGauge:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Gauge, key: tuple[str, ...]):
        self._metric = metric
        self._key = key

    def set(self, value: float) -> None:
        self._metric._values[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._metric._values[self._key] = (
            self._metric._values.get(self._key, 0.0) + amount
        )


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """A distribution over fixed, ascending buckets.

    Stores per-bucket counts plus sum/count; the Prometheus exporter
    renders the conventional cumulative ``_bucket{le=...}`` series with
    a trailing ``+Inf``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending non-empty buckets, got {buckets}"
            )
        self.buckets = tuple(float(b) for b in buckets)
        self._states: dict[tuple[str, ...], _HistogramState] = {}
        if not label_names:
            self._states[()] = _HistogramState(len(self.buckets))

    def _make_child(self, key: tuple[str, ...]) -> "_BoundHistogram":
        self._states.setdefault(key, _HistogramState(len(self.buckets)))
        return _BoundHistogram(self, key)

    def observe(self, value: float) -> None:
        """Record one observation on the unlabeled series."""
        self._require_unlabeled()
        self._observe((), value)

    def _observe(self, key: tuple[str, ...], value: float) -> None:
        state = self._states.setdefault(key, _HistogramState(len(self.buckets)))
        state.sum += value
        state.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                state.bucket_counts[i] += 1
                break

    def state_of(self, **values: str) -> _HistogramState:
        """The (bucket_counts, sum, count) state of one series."""
        key = _label_key(self, values)
        return self._states.setdefault(key, _HistogramState(len(self.buckets)))

    @property
    def count(self) -> int:
        """Observations on the unlabeled series."""
        self._require_unlabeled()
        return self._states[()].count

    @property
    def sum(self) -> float:
        """Sum of observations on the unlabeled series."""
        self._require_unlabeled()
        return self._states[()].sum

    def samples(self) -> Iterable[tuple[tuple[str, ...], _HistogramState]]:
        return sorted(self._states.items())

    def reset(self) -> None:
        for key in self._states:
            self._states[key] = _HistogramState(len(self.buckets))


class _BoundHistogram:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Histogram, key: tuple[str, ...]):
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)


class _NullHandle:
    """Accepts the full metric/child API and does nothing."""

    __slots__ = ()

    def labels(self, **values: str) -> "_NullHandle":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class MetricsRegistry:
    """The metric + span hub one run's components share.

    Args:
        enabled: When False every returned handle is a shared no-op and
            nothing is recorded — the zero-overhead disabled mode.
        clock: Sim-time source for spans; components usually inject it
            later via :meth:`bind_clock` once the simulator exists.
    """

    def __init__(
        self, enabled: bool = True, clock: Callable[[], float] | None = None
    ):
        self.enabled = enabled
        self._clock = clock
        self._metrics: dict[str, _Metric] = {}
        self.spans: list[Span] = []

    # -- registration ---------------------------------------------------

    def _register(self, cls, name: str, help: str, label_names, **kwargs):
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"bad metric name {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(label_names):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        metric = cls(name, help, tuple(label_names), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str, labels: Iterable[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter."""
        if not self.enabled:
            return _NULL_HANDLE
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str, labels: Iterable[str] = ()) -> Gauge:
        """Register (or fetch) a gauge."""
        if not self.enabled:
            return _NULL_HANDLE
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram."""
        if not self.enabled:
            return _NULL_HANDLE
        return self._register(Histogram, name, help, labels, buckets=buckets)

    # -- spans ----------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the sim-time source spans read (idempotent)."""
        if self.enabled:
            self._clock = clock

    def span(self, name: str, **labels: str) -> SpanContext:
        """A context manager recording one sim-time span.

        Without a bound clock the span is recorded at time 0.0 — the
        event sequence is still useful even when durations are not.
        """
        if not self.enabled:
            return NULL_SPAN_CONTEXT
        return SpanContext(self, name, {k: str(v) for k, v in labels.items()})

    def record_span(
        self, name: str, start: float, end: float, **labels: str
    ) -> None:
        """Record a span whose endpoints were captured by the caller.

        The engines use this where the interval brackets ``sim.run``
        calls and a ``with`` block would force awkward control flow.
        """
        if self.enabled:
            self.spans.append(
                Span(
                    name=name,
                    labels={k: str(v) for k, v in labels.items()},
                    start=start,
                    end=end,
                )
            )

    def spans_of(self, name: str) -> list[Span]:
        """All recorded spans with the given name, in record order."""
        return [s for s in self.spans if s.name == name]

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- introspection ---------------------------------------------------

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric:
        """The metric registered under ``name``.

        Raises:
            ConfigurationError: unknown metric.
        """
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigurationError(f"no metric registered as {name!r}") from None

    def metrics(self) -> Iterable[_Metric]:
        """Registered metrics in name order (deterministic)."""
        return [self._metrics[name] for name in self.names()]

    def reset(self) -> None:
        """Zero all metric values and clear spans; keep registrations."""
        for metric in self._metrics.values():
            metric.reset()
        self.spans.clear()


#: The shared disabled registry every un-instrumented component uses.
NULL_REGISTRY = MetricsRegistry(enabled=False)
