"""Durable Merkle checkpoints over the committed chain.

A checkpoint pins three things at a block serial ``s``:

* the chain tip hash at ``s`` (so a compacted replica can re-anchor
  its hash chain without the genesis prefix);
* a digest of the reputation books at ``s`` (the paper's provable
  reputation state rides on the same commit stream, so a restarted
  node can detect a book/chain mismatch);
* a rolling Merkle root: ``root = merkle(prev_root, h_{w+1}, ..., h_s)``
  where ``w`` is the previous checkpoint's serial and ``h_i`` the hash
  of block ``i``.  Each root therefore commits (transitively) to every
  block hash since genesis, while only the last window's hashes need
  to be stored to verify it.

Checkpoint files are JSON wrapped with a CRC32, written atomically
(tmp + rename) and fsynced, and the newest ``retain`` files are kept so
a corrupt latest checkpoint degrades to the previous one rather than to
a full peer replay.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.crypto.hashing import hash_value
from repro.crypto.merkle import EMPTY_ROOT, merkle_root
from repro.storage.segments import StorageCorruption

__all__ = [
    "CHECKPOINT_RETAIN",
    "Checkpoint",
    "checkpoint_path",
    "load_checkpoints",
    "reputation_digest",
    "write_checkpoint",
]

CHECKPOINT_FORMAT = 1
#: How many checkpoint files survive pruning.
CHECKPOINT_RETAIN = 2
_CKPT_RE = re.compile(r"checkpoint-(\d{8})\.json$")


@dataclass(frozen=True)
class Checkpoint:
    """A durable pin of the chain and reputation state at ``serial``."""

    serial: int
    tip_hash: bytes
    book_digest: bytes
    window_start: int  #: serial of the previous checkpoint (0 for the first)
    window_hashes: tuple[bytes, ...]  #: block hashes window_start+1 .. serial
    prev_root: bytes  #: previous checkpoint's rolling root (EMPTY_ROOT for the first)
    root: bytes  #: merkle(prev_root, *window_hashes)
    #: Optional sparse reputation payload (gid -> ReputationBook.export_state()).
    #: When present, a restarted node restores the books directly instead of
    #: recomputing them; the digest above still guards integrity.
    book_state: Mapping[str, object] | None = None

    @staticmethod
    def compute_root(prev_root: bytes, window_hashes: Iterable[bytes]) -> bytes:
        return merkle_root([prev_root, *window_hashes])

    def verify(self) -> bool:
        """Internal consistency: window shape and recomputed Merkle root."""
        if self.serial - self.window_start != len(self.window_hashes):
            return False
        if self.window_hashes and self.window_hashes[-1] != self.tip_hash:
            return False
        return self.root == self.compute_root(self.prev_root, self.window_hashes)


def reputation_digest(books: Mapping[str, object]) -> bytes:
    """Canonical digest of every governor's reputation book.

    ``books`` maps governor id -> ReputationBook; the digest covers the
    sorted ``(governor, collector, provider, weight)`` tuples so any
    divergence in any replica's book changes the value.
    """
    rows = []
    for gid in sorted(books):
        book = books[gid]
        for cid in sorted(book.collectors()):
            weights = book.vector(cid).provider_weights
            rows.append((gid, cid, tuple(sorted(weights.items()))))
    return hash_value(tuple(rows))


def checkpoint_path(directory: str | Path, serial: int) -> Path:
    return Path(directory) / f"checkpoint-{serial:08d}.json"


def write_checkpoint(
    directory: str | Path,
    ckpt: Checkpoint,
    *,
    fsync: bool = True,
    retain: int = CHECKPOINT_RETAIN,
) -> Path:
    """Atomically persist ``ckpt`` and prune all but the newest ``retain``."""
    directory = Path(directory)
    body = {
        "format": CHECKPOINT_FORMAT,
        "serial": ckpt.serial,
        "tip_hash": ckpt.tip_hash.hex(),
        "book_digest": ckpt.book_digest.hex(),
        "window_start": ckpt.window_start,
        "window_hashes": [h.hex() for h in ckpt.window_hashes],
        "prev_root": ckpt.prev_root.hex(),
        "root": ckpt.root.hex(),
    }
    if ckpt.book_state is not None:
        # Sparse payload: rows equal to the default are elided at export
        # time, so size tracks touched rows, not the registered universe.
        body["book_state"] = ckpt.book_state
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
    doc = {"checkpoint": body, "crc": zlib.crc32(encoded.encode())}
    path = checkpoint_path(directory, ckpt.serial)
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w") as fh:
        fh.write(json.dumps(doc, sort_keys=True))
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    existing = sorted(directory.glob("checkpoint-*.json"))
    for stale in existing[:-retain] if retain > 0 else []:
        stale.unlink()
    return path


def _load_one(path: Path) -> Checkpoint:
    doc = json.loads(path.read_text())
    body = doc["checkpoint"]
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(encoded.encode()) != doc["crc"]:
        raise ValueError("checkpoint CRC mismatch")
    if body.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"unknown checkpoint format {body.get('format')!r}")
    ckpt = Checkpoint(
        serial=int(body["serial"]),
        tip_hash=bytes.fromhex(body["tip_hash"]),
        book_digest=bytes.fromhex(body["book_digest"]),
        window_start=int(body["window_start"]),
        window_hashes=tuple(bytes.fromhex(h) for h in body["window_hashes"]),
        prev_root=bytes.fromhex(body["prev_root"]),
        root=bytes.fromhex(body["root"]),
        book_state=body.get("book_state"),
    )
    if not ckpt.verify():
        raise ValueError("checkpoint Merkle root does not match its window")
    return ckpt


def load_checkpoints(
    directory: str | Path,
) -> tuple[list[Checkpoint], list[StorageCorruption]]:
    """All parseable checkpoints, newest first; bad files become corruptions."""
    directory = Path(directory)
    good: list[Checkpoint] = []
    bad: list[StorageCorruption] = []
    for path in sorted(directory.glob("checkpoint-*.json"), reverse=True):
        if not _CKPT_RE.search(path.name):
            continue
        try:
            good.append(_load_one(path))
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            bad.append(
                StorageCorruption(
                    kind="checkpoint-corrupt",
                    target=path.name,
                    offset=-1,
                    detail=str(exc),
                )
            )
    return good, bad


def initial_root() -> bytes:
    """Rolling-root seed used before any checkpoint exists."""
    return EMPTY_ROOT


#: Type of the callback a durable store uses to snapshot the books.
BookDigestFn = Callable[[], bytes]
