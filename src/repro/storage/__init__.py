"""Durable ledger storage: segment log, Merkle checkpoints, recovery.

The paper's model keeps every ledger structure in memory; a deployable
node must survive a process crash without replaying the whole chain
from a live peer.  This package provides that property as three layers:

* :class:`SegmentLog` — an append-only log of length-prefixed,
  CRC-protected records in rolling segment files with a manifest;
* :class:`Checkpoint` / :func:`write_checkpoint` — periodic durable
  pins of ``(serial, chain tip hash, reputation-book digest)`` plus a
  rolling Merkle root over the block hashes since the previous
  checkpoint, enabling compaction of segments the checkpoint covers;
* :func:`recover` — the restart path: replay segments, verify CRCs,
  block hashes, hash-chain links and the checkpoint commitments, and
  degrade *detectably* (never silently) to the last good checkpoint —
  or to nothing, leaving peer sync to fill the chain.

:class:`DurableBlockStore` glues the layers behind the ordinary
:class:`~repro.ledger.store.BlockStore` interface; pure in-memory
remains the default everywhere, so seeded runs without a
:class:`StorageConfig` are bit-identical to pre-durability builds.
Disk faults are injected by :class:`repro.faults.DiskFaultPlan` and
exercised in ``tests/test_disk_faults.py`` / ``tests/test_kill_restart.py``.
"""

from repro.storage.checkpoints import (
    Checkpoint,
    load_checkpoints,
    reputation_digest,
    write_checkpoint,
)
from repro.storage.durable import DurableBlockStore, StorageConfig, open_durable_store
from repro.storage.recovery import RecoveryReport, recover
from repro.storage.segments import (
    ScannedRecord,
    SegmentLog,
    StorageCorruption,
    scan_segments,
)

__all__ = [
    "Checkpoint",
    "DurableBlockStore",
    "RecoveryReport",
    "ScannedRecord",
    "SegmentLog",
    "StorageConfig",
    "StorageCorruption",
    "load_checkpoints",
    "open_durable_store",
    "recover",
    "reputation_digest",
    "scan_segments",
    "write_checkpoint",
]
