"""A BlockStore that persists every published block to a segment log.

``DurableBlockStore`` is a drop-in :class:`~repro.ledger.store.BlockStore`:
the engine publishes and readers cursor through it exactly as before,
but each append is also framed, CRC'd and fsynced into the segment log,
and every ``checkpoint_interval`` blocks a Merkle checkpoint is written
and (optionally) older segments are compacted away.

Construction goes through :func:`open_durable_store`, which first runs
the :mod:`repro.storage.recovery` state machine against the directory,
truncates whatever it rejected, re-anchors the in-memory store at the
recovered base, and replays the verified blocks — so "open the store"
and "recover from crash" are the same operation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.crypto.merkle import EMPTY_ROOT
from repro.exceptions import LedgerError
from repro.ledger.codec import encode_block
from repro.ledger.store import BlockStore
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.storage.checkpoints import (
    CHECKPOINT_RETAIN,
    Checkpoint,
    write_checkpoint,
)
from repro.storage.recovery import RecoveryReport, apply_truncation, recover
from repro.storage.segments import SegmentLog

__all__ = [
    "DurableBlockStore",
    "StorageConfig",
    "open_durable_store",
    "storage_metrics",
]


@dataclass(frozen=True)
class StorageConfig:
    """Knobs for a durable ledger directory.

    ``checkpoint_interval=0`` disables checkpoints (and hence
    compaction): recovery then always replays from genesis.
    """

    directory: str | Path
    checkpoint_interval: int = 8
    segment_bytes: int = 1 << 20
    fsync: bool = True
    compact: bool = True
    retain_checkpoints: int = CHECKPOINT_RETAIN


def storage_metrics(registry: MetricsRegistry) -> dict[str, object]:
    """Register (or fetch) the ``storage_*`` metric family.

    Shared by the engine (which registers unconditionally so the
    telemetry inventory is stable) and the durable store itself.
    """
    return {
        "records": registry.counter(
            "storage_records_appended_total",
            "Block records appended to the segment log",
        ),
        "segments": registry.counter(
            "storage_segments_total",
            "Segment files created (rolls) beyond the initial one",
        ),
        "bytes": registry.counter(
            "storage_bytes_written_total",
            "Bytes of framed records written to segments",
        ),
        "checkpoints": registry.counter(
            "storage_checkpoints_total",
            "Merkle checkpoints written",
        ),
        "compacted": registry.counter(
            "storage_compacted_segments_total",
            "Sealed segment files deleted by checkpoint compaction",
        ),
        "corruptions": registry.counter(
            "storage_corruptions_detected_total",
            "On-disk defects detected during recovery, by kind",
            labels=("kind",),
        ),
        "recovered": registry.counter(
            "storage_recovered_blocks_total",
            "Blocks restored after a restart, by source",
            labels=("source",),
        ),
        "ckpt_age": registry.gauge(
            "storage_checkpoint_age_blocks",
            "Blocks committed since the last checkpoint",
        ),
        "replay_s": registry.gauge(
            "storage_recovery_replay_seconds",
            "Wall-clock duration of the last recovery replay",
        ),
    }


class DurableBlockStore(BlockStore):
    """BlockStore whose publishes survive SIGKILL."""

    def __init__(
        self,
        config: StorageConfig,
        *,
        obs: MetricsRegistry | None = None,
        book_digest_fn: Callable[[], bytes] | None = None,
        book_state_fn: Callable[[], dict] | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.book_digest_fn = book_digest_fn
        self.book_state_fn = book_state_fn
        self._metrics = storage_metrics(self.obs)
        self._log = SegmentLog(
            config.directory,
            segment_bytes=config.segment_bytes,
            fsync=config.fsync,
        )
        self._prev_root = EMPTY_ROOT
        self._window_start = 0
        self._window: list[bytes] = []
        self.last_checkpoint_serial = 0
        self.recovery: RecoveryReport | None = None

    # -- publishing ----------------------------------------------------

    def publish(self, block) -> None:
        """Publish and durably append ``block``.

        The durable log is strictly sequential: out-of-order publishes
        that the in-memory store would tolerate are rejected here, so
        the on-disk chain always equals the in-memory one.
        """
        before = self.height
        if block.serial <= before:
            super().publish(block)  # idempotence / conflict detection
            return
        if block.serial != before + 1:
            raise LedgerError(
                f"durable store appends sequentially: got serial "
                f"{block.serial}, expected {before + 1}"
            )
        super().publish(block)
        payload = json.dumps(
            encode_block(block), sort_keys=True, separators=(",", ":")
        ).encode()
        rolls_before = self._log.segments_created
        written = self._log.append(block.serial, payload)
        self._metrics["records"].inc()
        self._metrics["bytes"].inc(written)
        if self._log.segments_created > rolls_before:
            self._metrics["segments"].inc(self._log.segments_created - rolls_before)
        self._window.append(block.hash())
        interval = self.config.checkpoint_interval
        if interval > 0 and block.serial - self._window_start >= interval:
            self._write_checkpoint()
        self._metrics["ckpt_age"].set(self.height - self.last_checkpoint_serial)

    def _write_checkpoint(self) -> None:
        digest = self.book_digest_fn() if self.book_digest_fn is not None else b""
        state = self.book_state_fn() if self.book_state_fn is not None else None
        ckpt = Checkpoint(
            serial=self.height,
            tip_hash=self.tip_hash(),
            book_digest=digest,
            window_start=self._window_start,
            window_hashes=tuple(self._window),
            prev_root=self._prev_root,
            root=Checkpoint.compute_root(self._prev_root, self._window),
            book_state=state,
        )
        write_checkpoint(
            self.config.directory,
            ckpt,
            fsync=self.config.fsync,
            retain=self.config.retain_checkpoints,
        )
        self._metrics["checkpoints"].inc()
        self.last_checkpoint_serial = ckpt.serial
        self._prev_root = ckpt.root
        self._window_start = ckpt.serial
        self._window = []
        if self.config.compact:
            removed = self._log.truncate_before(ckpt.serial)
            if removed:
                self._metrics["compacted"].inc(removed)

    # -- recovery hand-off ---------------------------------------------

    def _adopt_recovery(self, report: RecoveryReport) -> None:
        """Load the verified chain a recovery pass produced."""
        self.recovery = report
        if report.base_serial > 0:
            self.anchor(report.base_serial, report.base_hash)
        for block in report.blocks:
            BlockStore.publish(self, block)  # already on disk; memory only
        self._prev_root = report.resume_prev_root
        self._window_start = report.resume_window_start
        self._window = list(report.resume_window)
        self.last_checkpoint_serial = report.resume_window_start
        for bad in report.corruptions:
            self._metrics["corruptions"].labels(kind=bad.kind).inc()
        if report.blocks:
            self._metrics["recovered"].labels(source="disk").inc(len(report.blocks))
        self._metrics["replay_s"].set(report.replay_seconds)
        self._metrics["ckpt_age"].set(self.height - self.last_checkpoint_serial)


def open_durable_store(
    config: StorageConfig,
    *,
    obs: MetricsRegistry | None = None,
    book_digest_fn: Callable[[], bytes] | None = None,
    book_state_fn: Callable[[], dict] | None = None,
) -> tuple[DurableBlockStore, RecoveryReport]:
    """Recover ``config.directory`` and open a durable store on it.

    Any bytes the recovery state machine rejected are physically
    truncated before the store starts appending, so a restart never
    extends a corrupt tail.
    """
    report = recover(config.directory)
    apply_truncation(config.directory, report)
    store = DurableBlockStore(
        config,
        obs=obs,
        book_digest_fn=book_digest_fn,
        book_state_fn=book_state_fn,
    )
    store._adopt_recovery(report)
    return store, report
