"""Append-only segment log with CRC-framed records.

On-disk layout inside a storage directory::

    segment-000001.log     length-prefixed records (framing below)
    segment-000002.log     ...
    manifest.json          CRC-wrapped metadata (segment list, ranges)
    checkpoint-*.json      handled by :mod:`repro.storage.checkpoints`

Record framing (little-endian)::

    +---------+---------+----------+------------------+
    | u32 len | u32 crc | u64 ser  | payload (len B)  |
    +---------+---------+----------+------------------+

``crc`` is ``zlib.crc32`` over the payload; ``ser`` is the block
serial, duplicated in the frame so torn tails and truncations can be
reported precisely without decoding payloads.

Scanning is strictly conservative: the first bad frame — short header,
implausible length, CRC mismatch — ends the scan, and everything at or
after it is reported as a :class:`StorageCorruption` instead of being
loaded.  A frame boundary cannot be re-synchronised safely once framing
is broken, and a silently-loaded corrupt block would defeat the whole
point of the checkpoint/recovery machinery.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "MANIFEST_NAME",
    "ScannedRecord",
    "SegmentLog",
    "StorageCorruption",
    "frame_spans",
    "read_manifest",
    "scan_segments",
]

_HEADER = struct.Struct("<IIQ")
#: Upper bound on a single record payload; anything larger is a
#: corrupt header, not a real block.
MAX_PAYLOAD = 1 << 26
MANIFEST_NAME = "manifest.json"
SEGMENT_GLOB = "segment-*.log"
MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class StorageCorruption:
    """One detected on-disk defect (never silently loaded past)."""

    kind: str  #: torn-tail | truncated-segment | crc-mismatch | bad-header | ...
    target: str  #: file name the defect was found in
    offset: int  #: byte offset of the offending frame (-1 if n/a)
    detail: str


@dataclass(frozen=True)
class ScannedRecord:
    """A CRC-verified frame read back from a segment."""

    serial: int
    payload: bytes
    segment: str
    offset: int  #: start of the frame within its segment
    end: int  #: one past the frame's last byte


class SegmentLog:
    """Rolling append-only log of framed records.

    ``append`` flushes (and by default fsyncs) every record before
    returning, so a committed block survives SIGKILL; ``fsync=False``
    models a lazy node whose tail can be lost on crash (the
    ``lost_fsync`` disk fault emulates exactly that).
    """

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = 1 << 20,
        fsync: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.fsync = bool(fsync)
        self._paths: list[Path] = sorted(self.directory.glob(SEGMENT_GLOB))
        if not self._paths:
            first = self._segment_path(1)
            first.touch()
            self._paths = [first]
        #: segment name -> (first, last) serial appended this process;
        #: sealed pre-existing segments are scanned lazily on compaction.
        self._ranges: dict[str, tuple[int, int]] = {}
        self._active_size = self._paths[-1].stat().st_size
        self.segments_created = 0
        self.write_manifest()

    # -- paths ---------------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"segment-{index:06d}.log"

    @property
    def active_path(self) -> Path:
        return self._paths[-1]

    def segment_paths(self) -> list[Path]:
        return list(self._paths)

    # -- writing -------------------------------------------------------

    def append(self, serial: int, payload: bytes) -> int:
        """Durably append one record; returns bytes written."""
        frame = _HEADER.pack(len(payload), zlib.crc32(payload), serial) + payload
        if self._active_size > 0 and self._active_size + len(frame) > self.segment_bytes:
            self._roll()
        with open(self.active_path, "ab") as fh:
            fh.write(frame)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._active_size += len(frame)
        name = self.active_path.name
        first, _ = self._ranges.get(name, (serial, serial))
        self._ranges[name] = (first, serial)
        return len(frame)

    def _roll(self) -> None:
        index = int(self.active_path.stem.split("-")[1]) + 1
        path = self._segment_path(index)
        path.touch()
        self._paths.append(path)
        self._active_size = 0
        self.segments_created += 1
        self.write_manifest()

    def truncate_before(self, serial: int) -> int:
        """Delete sealed segments whose records all precede ``serial``.

        The active segment is never deleted.  Returns the number of
        segment files removed (compaction metric).
        """
        removed = 0
        while len(self._paths) > 1:
            path = self._paths[0]
            rng = self._ranges.get(path.name) or _scan_range(path)
            if rng is None or rng[1] >= serial:
                break
            self._paths.pop(0)
            path.unlink()
            self._ranges.pop(path.name, None)
            removed += 1
        if removed:
            self.write_manifest()
        return removed

    # -- manifest ------------------------------------------------------

    def write_manifest(self) -> None:
        body = {
            "format": MANIFEST_FORMAT,
            "segments": [p.name for p in self._paths],
            "segment_bytes": self.segment_bytes,
            "ranges": {name: list(rng) for name, rng in sorted(self._ranges.items())},
        }
        encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
        doc = {"manifest": body, "crc": zlib.crc32(encoded.encode())}
        tmp = self.directory / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True))
        os.replace(tmp, self.directory / MANIFEST_NAME)


def _scan_range(path: Path) -> tuple[int, int] | None:
    """(first, last) serial of the valid frames in one segment."""
    serials = [rec.serial for rec in _scan_one(path)[0]]
    if not serials:
        return None
    return serials[0], serials[-1]


def frame_spans(path: Path) -> list[tuple[int, int, int]]:
    """Valid ``(offset, end, serial)`` frame spans — fault-injection helper."""
    return [(rec.offset, rec.end, rec.serial) for rec in _scan_one(path)[0]]


def _scan_one(
    path: Path, *, final_segment: bool = True
) -> tuple[list[ScannedRecord], StorageCorruption | None]:
    data = path.read_bytes()
    records: list[ScannedRecord] = []
    offset = 0
    tail_kind = "torn-tail" if final_segment else "truncated-segment"
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return records, StorageCorruption(
                kind=tail_kind,
                target=path.name,
                offset=offset,
                detail=f"partial header: {len(data) - offset} of {_HEADER.size} bytes",
            )
        length, crc, serial = _HEADER.unpack_from(data, offset)
        if length > MAX_PAYLOAD:
            return records, StorageCorruption(
                kind="bad-header",
                target=path.name,
                offset=offset,
                detail=f"implausible payload length {length} for serial {serial}",
            )
        end = offset + _HEADER.size + length
        if end > len(data):
            return records, StorageCorruption(
                kind=tail_kind,
                target=path.name,
                offset=offset,
                detail=(
                    f"partial payload for serial {serial}: "
                    f"{len(data) - offset - _HEADER.size} of {length} bytes"
                ),
            )
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            return records, StorageCorruption(
                kind="crc-mismatch",
                target=path.name,
                offset=offset,
                detail=f"CRC mismatch for serial {serial}",
            )
        records.append(
            ScannedRecord(
                serial=serial, payload=payload, segment=path.name,
                offset=offset, end=end,
            )
        )
        offset = end
    return records, None


def scan_segments(
    directory: str | Path,
) -> tuple[list[ScannedRecord], list[StorageCorruption]]:
    """Replay every segment in order, stopping at the first bad frame.

    Records *after* a corruption — including whole later segments — are
    not returned: once framing or a CRC fails, nothing downstream can
    be trusted to sit on a frame boundary.  The caller degrades to the
    last good checkpoint and/or peer sync for the remainder.
    """
    directory = Path(directory)
    paths = sorted(directory.glob(SEGMENT_GLOB))
    records: list[ScannedRecord] = []
    corruptions: list[StorageCorruption] = []
    for i, path in enumerate(paths):
        final = i == len(paths) - 1
        recs, bad = _scan_one(path, final_segment=final)
        records.extend(recs)
        if bad is not None:
            corruptions.append(bad)
            if not final:
                corruptions.append(
                    StorageCorruption(
                        kind="dropped-suffix",
                        target=path.name,
                        offset=-1,
                        detail=f"{len(paths) - 1 - i} later segment(s) ignored "
                        "after corruption",
                    )
                )
            break
    return records, corruptions


def read_manifest(
    directory: str | Path,
) -> tuple[dict | None, StorageCorruption | None]:
    """Load the manifest if present; a corrupt one is reported, not fatal.

    The manifest is advisory (segment discovery falls back to the
    zero-padded file names), so recovery only uses it as an extra
    tamper tripwire.
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None, None
    try:
        doc = json.loads(path.read_text())
        body = doc["manifest"]
        encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(encoded.encode()) != doc["crc"]:
            raise ValueError("manifest CRC mismatch")
        if body.get("format") != MANIFEST_FORMAT:
            raise ValueError(f"unknown manifest format {body.get('format')!r}")
    except (ValueError, KeyError, TypeError) as exc:
        return None, StorageCorruption(
            kind="manifest-corrupt", target=path.name, offset=-1, detail=str(exc)
        )
    return body, None
