"""Crash-restart recovery: replay segments, verify, anchor, truncate.

The recovery state machine (documented in DESIGN.md §Durability):

1. **Scan** — load checkpoints (CRC + Merkle root verified; corrupt
   files are reported and skipped) and replay segment frames (CRC per
   record; first bad frame ends the scan).
2. **Decode** — each payload goes through ``decode_block``, which
   recomputes the embedded block hash; a tampered-but-CRC-valid record
   is still caught here.
3. **Anchor** — if the first replayed block has serial 1 the chain
   anchors at genesis; otherwise a verified checkpoint with
   ``serial == first - 1`` must vouch for the compacted prefix.
   Unanchored segments are dropped (reported), degrading to the newest
   verified checkpoint alone, or to nothing (full peer sync).
4. **Link** — replayed blocks must be serial-consecutive and
   hash-chained from the anchor; the first broken link truncates the
   usable chain there.
5. **Cross-check** — any verified checkpoint covering the recovered
   range must agree with the replayed tip hash at its serial.

Everything the state machine rejects surfaces in
``RecoveryReport.corruptions``; nothing corrupt is ever loaded
silently.  The report also carries the physical truncation point so
the caller can chop invalid bytes off disk before appending again.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.crypto.merkle import EMPTY_ROOT
from repro.exceptions import LedgerError
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.codec import decode_block
from repro.storage.checkpoints import Checkpoint, load_checkpoints
from repro.storage.segments import (
    SEGMENT_GLOB,
    ScannedRecord,
    StorageCorruption,
    read_manifest,
    scan_segments,
)

__all__ = ["RecoveryReport", "recover", "apply_truncation"]


@dataclass
class RecoveryReport:
    """Outcome of one restart-from-disk attempt."""

    base_serial: int  #: serial the recovered chain anchors at (0 = genesis)
    base_hash: bytes  #: tip hash at ``base_serial``
    blocks: list[Block]  #: verified chain suffix, serials base+1..height
    checkpoint: Checkpoint | None  #: newest verified checkpoint, if any
    corruptions: list[StorageCorruption]
    replay_seconds: float
    records_scanned: int
    #: rolling-root state the durable store resumes from
    resume_prev_root: bytes = EMPTY_ROOT
    resume_window_start: int = 0
    resume_window: list[bytes] = field(default_factory=list)
    #: physical cleanup: (keep_segment_name, keep_until_byte) or None
    truncate_at: tuple[str, int] | None = None

    @property
    def height(self) -> int:
        return self.base_serial + len(self.blocks)

    @property
    def clean(self) -> bool:
        return not self.corruptions

    def summary(self) -> str:
        state = "clean" if self.clean else f"{len(self.corruptions)} corruption(s)"
        return (
            f"recovered height {self.height} (base {self.base_serial}, "
            f"{len(self.blocks)} block(s) replayed, "
            f"checkpoint {'#%d' % self.checkpoint.serial if self.checkpoint else 'none'}, "
            f"{state}, {self.replay_seconds * 1e3:.1f} ms)"
        )


def recover(directory: str | Path) -> RecoveryReport:
    """Run the recovery state machine against ``directory``."""
    directory = Path(directory)
    t0 = time.perf_counter()
    corruptions: list[StorageCorruption] = []

    _, manifest_bad = read_manifest(directory)
    if manifest_bad is not None:
        corruptions.append(manifest_bad)

    checkpoints, ckpt_bad = load_checkpoints(directory)
    corruptions.extend(ckpt_bad)

    records, seg_bad = scan_segments(directory)
    corruptions.extend(seg_bad)

    # Decode payloads; decode_block re-verifies the embedded block hash,
    # so a bit flip that happens to keep the CRC intact is still caught.
    decoded: list[tuple[ScannedRecord, Block]] = []
    for rec in records:
        try:
            block = decode_block(json.loads(rec.payload.decode()))
        except (LedgerError, ValueError, KeyError, TypeError) as exc:
            corruptions.append(
                StorageCorruption(
                    kind="record-decode",
                    target=rec.segment,
                    offset=rec.offset,
                    detail=f"serial {rec.serial}: {exc}",
                )
            )
            break
        if block.serial != rec.serial:
            corruptions.append(
                StorageCorruption(
                    kind="record-decode",
                    target=rec.segment,
                    offset=rec.offset,
                    detail=f"frame serial {rec.serial} != block serial {block.serial}",
                )
            )
            break
        decoded.append((rec, block))

    # Anchor selection.
    latest = checkpoints[0] if checkpoints else None
    base_serial, base_hash = 0, GENESIS_PREV_HASH
    anchor_ckpt: Checkpoint | None = None
    if decoded:
        first_serial = decoded[0][1].serial
        if first_serial == 1:
            anchor_ckpt = None  # genesis-anchored; checkpoints only cross-check
        else:
            # Compaction keeps whole segments, so the disk may still
            # hold a few records at or below the checkpoint serial; any
            # verified checkpoint covering the compacted prefix
            # (serial >= first - 1) anchors the chain, and records the
            # checkpoint already pins are dropped rather than replayed.
            anchor_ckpt = (
                latest
                if latest is not None and latest.serial >= first_serial - 1
                else None
            )
            if anchor_ckpt is None:
                corruptions.append(
                    StorageCorruption(
                        kind="unanchored-segments",
                        target=decoded[0][0].segment,
                        offset=decoded[0][0].offset,
                        detail=(
                            f"segments start at serial {first_serial} but no "
                            "verified checkpoint pins the compacted prefix"
                        ),
                    )
                )
                decoded = []
            else:
                base_serial, base_hash = anchor_ckpt.serial, anchor_ckpt.tip_hash
                decoded = [
                    (rec, block) for rec, block in decoded if block.serial > base_serial
                ]
    if not decoded and anchor_ckpt is None and latest is not None:
        # No usable blocks: restart from the newest checkpoint alone and
        # let peer sync provide everything after it.
        anchor_ckpt = latest
        base_serial, base_hash = latest.serial, latest.tip_hash

    # Hash-chain verification from the anchor.
    blocks: list[Block] = []
    good_records: list[ScannedRecord] = []
    prev = base_hash
    expect = base_serial + 1
    for rec, block in decoded:
        if block.serial != expect or block.prev_hash != prev:
            corruptions.append(
                StorageCorruption(
                    kind="chain-break",
                    target=rec.segment,
                    offset=rec.offset,
                    detail=(
                        f"block {block.serial} does not extend verified tip "
                        f"(expected serial {expect})"
                    ),
                )
            )
            break
        blocks.append(block)
        good_records.append(rec)
        prev = block.hash()
        expect += 1

    height = base_serial + len(blocks)

    # Cross-check every verified checkpoint that the recovered range covers.
    for ckpt in checkpoints:
        if base_serial < ckpt.serial <= height:
            replayed_tip = blocks[ckpt.serial - base_serial - 1].hash()
            if replayed_tip != ckpt.tip_hash:
                corruptions.append(
                    StorageCorruption(
                        kind="checkpoint-divergence",
                        target=f"checkpoint-{ckpt.serial:08d}.json",
                        offset=-1,
                        detail=(
                            f"checkpoint #{ckpt.serial} pins a different tip "
                            "than the replayed (genesis-anchored) chain"
                        ),
                    )
                )

    # Rolling-root resume state: the newest verified checkpoint at or
    # below the recovered height starts the next window.
    resume_ckpt = next(
        (c for c in checkpoints if c.serial <= height), None
    )
    if resume_ckpt is not None:
        resume_prev_root = resume_ckpt.root
        resume_window_start = resume_ckpt.serial
    else:
        resume_prev_root = EMPTY_ROOT
        resume_window_start = 0
    resume_window = [
        b.hash() for b in blocks if b.serial > resume_window_start
    ]

    # Physical truncation point: keep bytes up to the last verified
    # record; everything after (including later segments) is invalid.
    truncate_at: tuple[str, int] | None = None
    if corruptions:
        if good_records:
            truncate_at = (good_records[-1].segment, good_records[-1].end)
        elif sorted(directory.glob(SEGMENT_GLOB)):
            truncate_at = ("", 0)  # nothing on disk is usable

    return RecoveryReport(
        base_serial=base_serial,
        base_hash=base_hash,
        blocks=blocks,
        checkpoint=anchor_ckpt or resume_ckpt,
        corruptions=corruptions,
        replay_seconds=time.perf_counter() - t0,
        records_scanned=len(records),
        resume_prev_root=resume_prev_root,
        resume_window_start=resume_window_start,
        resume_window=resume_window,
        truncate_at=truncate_at,
    )


def apply_truncation(directory: str | Path, report: RecoveryReport) -> int:
    """Chop unverified bytes off disk so appending can resume cleanly.

    Returns the number of bytes removed.  A no-op for clean reports.
    """
    directory = Path(directory)
    removed = 0
    # A checkpoint file that failed its CRC/Merkle check is garbage: if
    # it stayed, every later restart would re-detect (and re-count) the
    # same corruption.  Delete it — the retained older checkpoint or
    # peer sync already took over.
    for bad in report.corruptions:
        if bad.kind == "checkpoint-corrupt":
            path = directory / bad.target
            if path.exists():
                removed += path.stat().st_size
                path.unlink()
    if report.truncate_at is None:
        return removed
    keep_segment, keep_until = report.truncate_at
    for path in sorted(directory.glob(SEGMENT_GLOB)):
        if keep_segment and path.name < keep_segment:
            continue
        if path.name == keep_segment:
            size = path.stat().st_size
            if size > keep_until:
                with open(path, "r+b") as fh:
                    fh.truncate(keep_until)
                removed += size - keep_until
        else:
            removed += path.stat().st_size
            path.unlink()
    return removed
