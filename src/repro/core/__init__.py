"""The paper's contribution: reputation mechanism, screening, protocol.

Public entry points:

* :class:`ProtocolParams` — all tunables (f, beta, mu, nu, U, b_limit).
* :class:`ReputationBook` / :class:`ReputationVector` — the (s+2)-vectors.
* :func:`screen_transaction` — Algorithm 2.
* :mod:`repro.core.updating` — Algorithm 3's three cases.
* :class:`ReputationGame` — Theorem 1's focused simulation.
* :class:`ProtocolEngine` — the full three-tier round loop.
* :mod:`repro.core.regret` — the paper's bounds as formulas.
"""

from repro.core.adaptive import AdaptiveF
from repro.core.arguing import ArgueManager, ArgueOutcome
from repro.core.gossip import ReputationGossip, ReputationSummary, make_summary
from repro.core.netengine import NetworkedProtocolEngine, NetworkedRoundResult
from repro.core.game import GameResult, ReputationGame
from repro.core.params import (
    DEFAULT_PARAMS,
    ProtocolParams,
    gamma_for,
    tuned_beta,
    validate_discounts,
)
from repro.core.protocol import EngineMetrics, ProtocolEngine, RoundResult
from repro.core.regret import (
    hoeffding_tail,
    log_beta_linearisation_holds,
    rwm_bound,
    theorem1_bound,
    theorem3_threshold,
    theorem4_bound,
)
from repro.core.reputation import ReputationBook, ReputationVector
from repro.core.rewards import distribute_rewards, log_score, reputation_score
from repro.core.screening import (
    ReportSet,
    ScreeningDecision,
    decision_to_record,
    screen_transaction,
)
from repro.core.updating import (
    RevealSummary,
    apply_checked_update,
    apply_forge_update,
    apply_reveal_update,
    compute_loss,
)

__all__ = [
    "AdaptiveF",
    "ArgueManager",
    "ArgueOutcome",
    "DEFAULT_PARAMS",
    "EngineMetrics",
    "GameResult",
    "NetworkedProtocolEngine",
    "NetworkedRoundResult",
    "ProtocolEngine",
    "ProtocolParams",
    "ReportSet",
    "ReputationBook",
    "ReputationGame",
    "ReputationGossip",
    "ReputationSummary",
    "ReputationVector",
    "RevealSummary",
    "RoundResult",
    "ScreeningDecision",
    "apply_checked_update",
    "apply_forge_update",
    "apply_reveal_update",
    "compute_loss",
    "decision_to_record",
    "make_summary",
    "distribute_rewards",
    "gamma_for",
    "hoeffding_tail",
    "log_beta_linearisation_holds",
    "log_score",
    "reputation_score",
    "rwm_bound",
    "screen_transaction",
    "theorem1_bound",
    "theorem3_threshold",
    "theorem4_bound",
    "tuned_beta",
    "validate_discounts",
]
