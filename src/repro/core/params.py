"""Protocol parameters and the paper's β/γ selection rules.

Section 3.4 introduces three tunables — ``f`` (efficiency), ``mu`` and
``nu`` (reward shaping) — plus the reputation discounts ``beta`` (for a
collector that *concealed* an unchecked transaction) and ``gamma_tx``
(for one that *mislabeled* it).  The discounts must satisfy

    beta**2  <=  gamma_tx  <=  beta  <=  (gamma_tx - 1) * L_tx / 2 + 1  <=  1

where ``L_tx = 2 * W_wrong / (W_right + W_wrong)`` is the governor's
expected loss on the transaction.  The paper's practical choice is

    gamma_tx = max{ (beta - 1) / L_tx + (beta + 1) / 2,  (beta**2 + beta) / 2 }

which we implement in :func:`gamma_for`; :func:`validate_discounts`
checks the full inequality chain so experiments can ablate *invalid*
choices knowingly.  :func:`tuned_beta` is the proof's
``beta = 1 - 4 * sqrt(log(r) / T)`` schedule that yields the
``O(sqrt(T))`` regret of Theorem 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError

__all__ = [
    "ProtocolParams",
    "gamma_for",
    "validate_discounts",
    "tuned_beta",
    "DEFAULT_PARAMS",
]


def gamma_for(beta: float, loss: float) -> float:
    """The paper's adaptive mislabel discount ``gamma_tx``.

    Args:
        beta: Conceal discount in (0, 1).
        loss: ``L_tx`` in [0, 2] — the expected loss on the transaction.

    Returns:
        ``max{(beta-1)/L + (beta+1)/2, (beta^2+beta)/2}``, which lies in
        (0, 1) for every ``beta`` in (0, 1) and ``L`` in (0, 2); at
        ``L == 0`` only the second branch is live (no one mislabeled, so
        the value is never applied anyway).
    """
    if not 0.0 < beta < 1.0:
        raise ConfigurationError(f"beta must be in (0, 1), got {beta}")
    if not 0.0 <= loss <= 2.0:
        raise ConfigurationError(f"L_tx must be in [0, 2], got {loss}")
    floor_branch = (beta * beta + beta) / 2.0
    if loss == 0.0:
        return floor_branch
    adaptive_branch = (beta - 1.0) / loss + (beta + 1.0) / 2.0
    return max(adaptive_branch, floor_branch)


def validate_discounts(beta: float, gamma: float, loss: float) -> None:
    """Check the paper's inequality chain for (beta, gamma, L_tx).

    Raises:
        ConfigurationError: when any link of
        ``beta^2 <= gamma <= beta <= (gamma-1)L/2 + 1 <= 1`` fails.
    """
    tol = 1e-12
    if beta * beta > gamma + tol:
        raise ConfigurationError(
            f"beta^2 = {beta * beta:.6f} > gamma = {gamma:.6f}"
        )
    if gamma > beta + tol:
        raise ConfigurationError(f"gamma = {gamma:.6f} > beta = {beta:.6f}")
    upper = (gamma - 1.0) * loss / 2.0 + 1.0
    if beta > upper + tol:
        raise ConfigurationError(
            f"beta = {beta:.6f} > (gamma-1)*L/2 + 1 = {upper:.6f} (L = {loss})"
        )
    if upper > 1.0 + tol:
        raise ConfigurationError(f"(gamma-1)*L/2 + 1 = {upper:.6f} > 1")


def tuned_beta(r: int, horizon: int, floor: float = 0.1, ceiling: float = 0.9) -> float:
    """The proof's schedule ``beta = 1 - 4*sqrt(log(r)/T)``, clamped.

    The Theorem-1 constant ``-log(beta)/(1-beta) <= 17/2 - 8*beta`` holds
    for ``beta`` in [0.1, 0.9], so the schedule is clamped to that
    interval.  The paper states the unclamped value stays <= 0.9 for
    ``T <= 4800`` at ``r = 8``; that arithmetic only works with base-2
    logarithms (``log2(8) = 3`` gives ``1600 * 3 = 4800``), so this
    schedule uses ``log2`` — the regret bound is unaffected up to its
    hidden constant.

    Args:
        r: Collectors overseeing the provider.
        horizon: ``T`` — unchecked transactions expected for the provider.
    """
    if r < 2:
        raise ConfigurationError(f"need r >= 2 collectors for a meaningful beta, got {r}")
    if horizon < 1:
        raise ConfigurationError(f"horizon T must be >= 1, got {horizon}")
    raw = 1.0 - 4.0 * math.sqrt(math.log2(r) / horizon)
    return min(max(raw, floor), ceiling)


@dataclass(frozen=True)
class ProtocolParams:
    """Everything a protocol run is parameterised by.

    Attributes:
        f: Efficiency tuner in (0, 1); the probability that an
            invalid-labeled transaction sampled from collector ``c`` is
            left unchecked is ``f * Pr[c chosen]``, so the overall
            unchecked probability is at most ``f`` (Lemma 2).
        beta: Conceal discount in (0, 1).
        mu: Reward base for the misreport entry (> 1).
        nu: Reward base for the forge entry (> 1).
        argue_window: ``U`` — an unchecked-invalid transaction may be
            argued until buried by more than U same-state transactions.
        b_limit: Universal bound on transactions per block.
        delta: Screening timer — the max spread between the first and
            last collector report for one transaction (network synchrony
            gives a finite bound).
        initial_reputation: Starting weight of every first-s entry
            (the proof normalises to 1, giving ``W_0 = r``).
        reward_pool_per_block: Profit allotted to collectors per block.
    """

    f: float = 0.5
    beta: float = 0.9
    mu: float = 2.0
    nu: float = 4.0
    argue_window: int = 64
    b_limit: int = 1024
    delta: float = 0.2
    initial_reputation: float = 1.0
    reward_pool_per_block: float = 100.0

    def __post_init__(self) -> None:
        if not 0.0 < self.f < 1.0:
            raise ConfigurationError(f"f must be in (0, 1), got {self.f}")
        if not 0.0 < self.beta < 1.0:
            raise ConfigurationError(f"beta must be in (0, 1), got {self.beta}")
        if self.mu <= 1.0:
            raise ConfigurationError(f"mu must be > 1, got {self.mu}")
        if self.nu <= 1.0:
            raise ConfigurationError(f"nu must be > 1, got {self.nu}")
        if self.argue_window < 1:
            raise ConfigurationError(f"argue window U must be >= 1, got {self.argue_window}")
        if self.b_limit < 1:
            raise ConfigurationError(f"b_limit must be >= 1, got {self.b_limit}")
        if self.delta <= 0.0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.initial_reputation <= 0.0:
            raise ConfigurationError(
                f"initial reputation must be positive, got {self.initial_reputation}"
            )
        if self.reward_pool_per_block < 0.0:
            raise ConfigurationError("reward pool cannot be negative")

    def gamma(self, loss: float) -> float:
        """``gamma_tx`` for a transaction with expected loss ``loss``."""
        return gamma_for(self.beta, loss)

    def with_tuned_beta(self, r: int, horizon: int) -> "ProtocolParams":
        """A copy whose beta follows the Theorem-1 schedule."""
        return replace(self, beta=tuned_beta(r, horizon))


#: Sensible defaults used by examples and quick tests.
DEFAULT_PARAMS = ProtocolParams()
