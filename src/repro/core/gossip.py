"""Reputation gossip among governors — an extension beyond the paper.

In the paper every governor maintains a purely *local* reputation table
(Section 3.4); different governors can therefore hold divergent views of
the same collector (they sample different source collectors and check
different transactions).  A natural extension — flagged by the paper's
own observation that "a governor may only perceive partial
information" — is periodic gossip: governors exchange signed reputation
summaries and fold peers' views into their own.

The fold rule is a **weighted geometric mean** per entry:

    w_own' = w_own^(1 - alpha) * w_peers_geomean^alpha

chosen because the reputation dynamics are multiplicative — the
geometric mean is the aggregation that commutes with the β/γ updates
(folding then updating equals updating then folding), so gossip cannot
manufacture weight that no local history justifies.  Additive entries
(misreport / forge counters) are *not* gossiped: they are evidence
counters attributable to locally verified events, and importing them
would let a malicious governor slander collectors.

:class:`ReputationGossip` verifies peer signatures before folding, so a
non-governor cannot inject summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.reputation import ReputationBook
from repro.crypto.identity import IdentityManager
from repro.crypto.signatures import Signature, SigningKey, sign
from repro.exceptions import ConfigurationError, ProtocolViolationError

__all__ = ["ReputationSummary", "ReputationGossip"]


@dataclass(frozen=True)
class ReputationSummary:
    """One governor's signed snapshot of his first-s reputation entries."""

    governor: str
    entries: dict[tuple[str, str], float]  # (collector, provider) -> weight
    signature: Signature

    def signed_message(self) -> tuple:
        """The structure the signature covers (sorted for stability)."""
        flat = tuple(sorted((c, p, w) for (c, p), w in self.entries.items()))
        return ("reputation-summary", self.governor, flat)


def make_summary(key: SigningKey, book: ReputationBook) -> ReputationSummary:
    """Snapshot and sign a governor's provider-entry table."""
    entries: dict[tuple[str, str], float] = {}
    for collector in book.collectors():
        for provider, weight in book.vector(collector).provider_weights.items():
            entries[(collector, provider)] = weight
    flat = tuple(sorted((c, p, w) for (c, p), w in entries.items()))
    message = ("reputation-summary", key.owner, flat)
    return ReputationSummary(
        governor=key.owner, entries=entries, signature=sign(key, message)
    )


@dataclass
class ReputationGossip:
    """Fold verified peer summaries into a governor's book.

    Args:
        im: Identity Manager for signature verification.
        alpha: Peer influence in (0, 1); 0 would ignore peers, 1 would
            surrender the local view entirely — both excluded.
    """

    im: IdentityManager
    alpha: float = 0.3
    folded: int = field(default=0, repr=False)
    rejected: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError("gossip alpha must be in (0, 1)")

    def fold(self, book: ReputationBook, summaries: list[ReputationSummary]) -> int:
        """Fold peer summaries into ``book``; returns summaries accepted.

        Unverifiable summaries are counted in :attr:`rejected` and
        skipped; a summary from the book's own governor is ignored
        (self-gossip is a no-op by construction and would double-count).
        """
        accepted: list[ReputationSummary] = []
        for summary in summaries:
            if summary.governor == book.governor:
                continue
            if not self.im.verify(
                summary.governor, summary.signed_message(), summary.signature
            ):
                self.rejected += 1
                continue
            accepted.append(summary)
        if not accepted:
            return 0
        for collector in book.collectors():
            vector = book.vector(collector)
            for provider in list(vector.provider_weights):
                peer_logs = [
                    math.log(s.entries[(collector, provider)])
                    for s in accepted
                    if (collector, provider) in s.entries
                    and s.entries[(collector, provider)] > 0
                ]
                if not peer_logs:
                    continue
                peer_geomean_log = sum(peer_logs) / len(peer_logs)
                own = vector.provider_weights[provider]
                if own <= 0:
                    raise ProtocolViolationError(
                        f"non-positive local weight for {collector}/{provider}"
                    )
                fused_log = (1.0 - self.alpha) * math.log(own) + (
                    self.alpha * peer_geomean_log
                )
                vector.provider_weights[provider] = max(
                    math.exp(fused_log), 1e-300
                )
        self.folded += len(accepted)
        return len(accepted)
