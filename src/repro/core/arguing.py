"""Argue handling and the burial window ``U``.

An honest provider that finds a *valid* transaction of his recorded as
``(invalid, unchecked)`` invokes ``argue(tx, s)``; governors then
re-evaluate the transaction, include it (as valid) in a later block, and
run the case-3 reputation update (Algorithm 2's ``deliver_argue`` arm).

The latency bound (Sections 3.1 and 4.2): an unchecked transaction can
only be argued before it is **buried by more than U transactions with
the same state** — i.e. U later unchecked transactions.  Past that, it
is regarded as invalid permanently.  :class:`ArgueManager` tracks the
global unchecked sequence and enforces the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ProtocolViolationError

__all__ = ["ArgueOutcome", "ArgueManager"]


@dataclass(frozen=True)
class ArgueOutcome:
    """Result of an argue attempt."""

    tx_id: str
    accepted: bool
    reason: str


@dataclass
class ArgueManager:
    """Tracks unchecked transactions and admits timely argues.

    Attributes:
        window: The bound ``U``.
    """

    window: int
    _positions: dict[str, int] = field(default_factory=dict)
    _next_position: int = 0
    _resolved: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ProtocolViolationError(f"argue window U must be >= 1, got {self.window}")

    def record_unchecked(self, tx_id: str) -> int:
        """Register a transaction that entered a block unchecked.

        Returns its position in the global unchecked sequence.  Re-recording
        an id raises — each transaction is buried once.
        """
        if tx_id in self._positions:
            raise ProtocolViolationError(f"tx {tx_id} already recorded as unchecked")
        position = self._next_position
        self._positions[tx_id] = position
        self._next_position += 1
        return position

    def burial_depth(self, tx_id: str) -> int:
        """How many unchecked transactions have followed ``tx_id``."""
        try:
            position = self._positions[tx_id]
        except KeyError:
            raise ProtocolViolationError(f"tx {tx_id} was never recorded unchecked") from None
        return self._next_position - 1 - position

    def is_arguable(self, tx_id: str) -> bool:
        """Whether an argue for ``tx_id`` would still be admitted."""
        if tx_id not in self._positions or tx_id in self._resolved:
            return False
        return self.burial_depth(tx_id) <= self.window

    def argue(self, tx_id: str) -> ArgueOutcome:
        """Attempt an argue; idempotently rejects duplicates and expiries."""
        if tx_id not in self._positions:
            return ArgueOutcome(tx_id, False, "transaction was never unchecked")
        if tx_id in self._resolved:
            return ArgueOutcome(tx_id, False, "already resolved")
        depth = self.burial_depth(tx_id)
        if depth > self.window:
            return ArgueOutcome(
                tx_id, False, f"buried by {depth} > U = {self.window} transactions"
            )
        self._resolved.add(tx_id)
        return ArgueOutcome(tx_id, True, "admitted")

    def resolve_silently(self, tx_id: str) -> None:
        """Mark a transaction resolved without an argue.

        Used when the truth is revealed through another channel (e.g. an
        experiment's reveal schedule) so a later argue is rejected.
        """
        if tx_id in self._positions:
            self._resolved.add(tx_id)

    def expired_unresolved(self) -> list[str]:
        """Unchecked tx ids now permanently invalid (window passed, no argue)."""
        return [
            tx_id
            for tx_id, pos in self._positions.items()
            if tx_id not in self._resolved
            and (self._next_position - 1 - pos) > self.window
        ]

    @property
    def pending_count(self) -> int:
        """Unchecked transactions still inside the window."""
        return sum(
            1
            for tx_id, pos in self._positions.items()
            if tx_id not in self._resolved
            and (self._next_position - 1 - pos) <= self.window
        )
