"""Reputation vectors — the paper's ``r_{j,i}``.

Each governor ``g_j`` keeps, for each collector ``c_i``, an
``(s + 2)``-length vector

    r_{j,i} = (w_{j,i,k_1}, ..., w_{j,i,k_s}, w_misreport, w_forge)

* the first ``s`` entries are **multiplicative weights**, one per
  provider the collector oversees, updated with the β/γ discounts when
  the truth of an *unchecked* transaction is revealed (Algorithm 3,
  case 3) — these drive the source-selection probabilities and the
  Theorem-1 regret bound;
* ``w_misreport`` is an **additive counter**: +1 for each *checked*
  transaction the collector labeled correctly, -1 otherwise (case 2);
* ``w_forge`` is an additive counter decremented for every forged
  upload (case 1).

:class:`ReputationBook` is one governor's full table ``R_j``.
"""

from __future__ import annotations

import math
from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro import perf
from repro.exceptions import ConfigurationError, ProtocolViolationError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["ReputationVector", "ReputationBook", "SparseWeightMap", "WeightRow"]

#: Reputations are clamped above this floor so that a collector that was
#: wrong many times keeps a representable (if negligible) weight; the
#: paper's analysis never divides by a single weight, only by sums, and
#: the floor keeps those sums strictly positive for numerical safety.
WEIGHT_FLOOR = 1e-300

#: Distinct (provider, collector-subset) weight rows a book memoizes
#: before the cache is wholesale dropped (bounded by 2^r subsets per
#: provider in practice, so eviction is rare).
_ROW_CACHE_SIZE = 4096


class _VersionedDict(dict):
    """Provider→weight map that bumps its owner vector's version on mutation.

    Reputation weights are mutated through :meth:`ReputationVector.scale`
    *and* directly (gossip reconciliation, tests), so cache invalidation
    cannot rely on a choke-point method — instead every mutating dict
    operation advances the owning vector's ``_version``, which the
    book-level row cache checks before reusing a snapshot.
    """

    __slots__ = ("owner",)

    def __init__(self, data=(), owner=None):
        super().__init__(data)
        self.owner = owner

    def _bump(self) -> None:
        if self.owner is not None:
            self.owner._version += 1

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._bump()

    def __delitem__(self, key):
        super().__delitem__(key)
        self._bump()

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self._bump()

    def setdefault(self, key, default=None):
        result = super().setdefault(key, default)
        self._bump()
        return result

    def pop(self, *args):
        result = super().pop(*args)
        self._bump()
        return result

    def popitem(self):
        result = super().popitem()
        self._bump()
        return result

    def clear(self):
        super().clear()
        self._bump()


class SparseWeightMap(MutableMapping):
    """Default-row + touched-overrides provider→weight map.

    The dense representation (one dict entry per overseen provider, as
    :meth:`ReputationVector.fresh` builds) costs memory proportional to
    the collector's whole membership; with a streaming universe of
    10^5–10^6 registered providers that is the scaling wall.  This map
    stores only the entries Algorithm 3 has actually *touched*
    (``overrides``) on top of a shared ``default`` weight, against a
    ``members`` view that answers containment/iteration/length without
    materializing the population (see
    :class:`repro.streaming.universe.CollectorMembers`).

    Semantics are exactly those of the dense dict:

    * lookup of an untouched member returns ``default``; a non-member
      raises ``KeyError`` (:meth:`ReputationVector.weight` converts that
      to the protocol violation);
    * iteration yields the members in their canonical registration
      order — the same order a dense book inserts them in — so every
      order-sensitive float reduction (``sum(values())``, digests) is
      bit-identical to the dense path;
    * every mutation bumps the owning vector's ``_version`` exactly like
      :class:`_VersionedDict`, so the book-level row cache invalidates
      identically.
    """

    __slots__ = ("members", "default", "overrides", "owner")

    def __init__(self, members, default: float, overrides=None, owner=None):
        if default <= 0:
            raise ConfigurationError(
                f"default reputation must be positive, got {default}"
            )
        self.members = members
        self.default = float(default)
        self.overrides: dict[str, float] = dict(overrides or {})
        self.owner = owner

    def _bump(self) -> None:
        if self.owner is not None:
            self.owner._version += 1

    def __getitem__(self, key):
        value = self.overrides.get(key)
        if value is not None:
            return value
        if key in self.members:
            return self.default
        raise KeyError(key)

    def __setitem__(self, key, value):
        self.overrides[key] = value
        self._bump()

    def __delitem__(self, key):
        # Deleting resets the entry to the default row (the member itself
        # cannot be removed from a membership view).
        del self.overrides[key]
        self._bump()

    def __contains__(self, key):
        return key in self.overrides or key in self.members

    def __iter__(self):
        return iter(self.members)

    def __len__(self):
        return len(self.members)

    @property
    def touched(self) -> int:
        """How many entries deviate from the default row (memory cost)."""
        return len(self.overrides)

    def mass(self) -> float:
        """Total weight over all members in O(touched).

        Computed as ``default * untouched + sum(overrides)`` — the same
        value as ``sum(self.values())`` up to float summation order, in
        time and memory independent of the universe size.  Streaming
        telemetry uses this; bit-identical paths (screening rows,
        digests) still reduce in canonical member order.
        """
        return self.default * (len(self.members) - len(self.overrides)) + sum(
            self.overrides.values()
        )


@dataclass(slots=True)
class WeightRow:
    """A contiguous snapshot of collector weights w.r.t. one provider.

    ``weights[i]`` is the weight of the i-th collector of the row's key,
    ``total`` is ``float(weights.sum())`` (NumPy pairwise order, exactly
    as the uncached path computes it), and :meth:`probabilities` /
    :meth:`python_sum` are computed lazily once and reused — this is
    what makes screening's source-selection normalization O(1) amortized.
    """

    weights: np.ndarray
    total: float
    _vectors: tuple = ()
    _versions: tuple[int, ...] = ()
    _probs: np.ndarray | None = None
    _psum: float | None = None

    def probabilities(self) -> np.ndarray:
        """``weights / total``, normalized once per snapshot."""
        if self._probs is None:
            self._probs = self.weights / self.total
        return self._probs

    def python_sum(self) -> float:
        """Sequential (Python ``sum``) total, for callers that always
        summed left-to-right — bit-identical to the uncached loop."""
        if self._psum is None:
            self._psum = sum(self.weights.tolist())
        return self._psum


@dataclass
class ReputationVector:
    """One collector's reputation as seen by one governor."""

    provider_weights: dict[str, float]
    misreport: int = 0
    forge: int = 0

    def __post_init__(self) -> None:
        # Version counter consulted by ReputationBook's row cache; bumped
        # by every provider_weights mutation via _VersionedDict or
        # SparseWeightMap.
        self._version = 0
        if isinstance(self.provider_weights, SparseWeightMap):
            self.provider_weights.owner = self
        elif not (
            isinstance(self.provider_weights, _VersionedDict)
            and self.provider_weights.owner is self
        ):
            self.provider_weights = _VersionedDict(self.provider_weights, self)

    @staticmethod
    def fresh(providers: Iterable[str], initial: float = 1.0) -> "ReputationVector":
        """A new collector's vector: every provider entry at ``initial``."""
        if initial <= 0:
            raise ConfigurationError(f"initial reputation must be positive, got {initial}")
        return ReputationVector(provider_weights={p: initial for p in providers})

    def weight(self, provider: str) -> float:
        """``w_{j,i,k}`` for provider ``k``.

        Raises:
            ProtocolViolationError: the collector does not oversee ``provider``
                (reputation entries exist only for linked providers).
        """
        try:
            return self.provider_weights[provider]
        except KeyError:
            raise ProtocolViolationError(
                f"no reputation entry for provider {provider!r}"
            ) from None

    def scale(self, provider: str, factor: float) -> None:
        """Multiply a provider entry by ``factor`` (β or γ), with floor."""
        if factor <= 0:
            raise ConfigurationError(f"reputation factor must be positive, got {factor}")
        current = self.weight(provider)
        self.provider_weights[provider] = max(current * factor, WEIGHT_FLOOR)

    def as_tuple(self) -> tuple:
        """The (s+2)-vector in the paper's layout, provider entries sorted."""
        ordered = tuple(self.provider_weights[p] for p in sorted(self.provider_weights))
        return ordered + (self.misreport, self.forge)

    @property
    def s(self) -> int:
        """Number of provider entries."""
        return len(self.provider_weights)


@dataclass
class ReputationBook:
    """One governor's reputation table ``R_j`` over all collectors.

    ``obs`` is the optional metrics registry; updates feed the
    ``rep_updates_total`` counter and the ``rep_update_magnitude``
    histogram (the ``-ln(factor)`` size of each multiplicative
    discount — see OBSERVABILITY.md).
    """

    governor: str
    initial: float = 1.0
    _vectors: dict[str, ReputationVector] = field(default_factory=dict)
    obs: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)

    def __post_init__(self) -> None:
        self._row_cache: dict[tuple[str, tuple[str, ...]], WeightRow] = {}
        self._m_updates = self.obs.counter(
            "rep_updates_total",
            "Reputation updates applied, by Algorithm-3 case",
            labels=("case",),
        )
        self._m_magnitude = self.obs.histogram(
            "rep_update_magnitude",
            "Multiplicative discount size -ln(factor) per scaled entry",
            buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
        )
        self._m_norm_hits = self.obs.counter(
            "rep_norm_cache_hits",
            "Reputation weight-row/normalization cache hits during screening",
        )
        self._m_norm_misses = self.obs.counter(
            "rep_norm_cache_misses",
            "Reputation weight-row cache misses (row rebuilt from vectors)",
        )

    def register_collector(self, collector: str, providers: Iterable[str]) -> None:
        """Create the fresh (s+2)-vector for a newly known collector."""
        if collector in self._vectors:
            raise ProtocolViolationError(
                f"collector {collector!r} already registered with {self.governor!r}"
            )
        self._vectors[collector] = ReputationVector.fresh(providers, self.initial)

    def register_collector_sparse(self, collector: str, members) -> None:
        """Register a collector over a *virtual* membership view.

        ``members`` only needs ``__contains__`` / ``__iter__`` /
        ``__len__`` (see :class:`repro.streaming.universe.CollectorMembers`);
        the vector starts as a pure default row, so registering a
        collector overseeing 10^6 providers costs O(1) memory and the
        book grows with the entries Algorithm 3 actually touches.
        Value-for-value this is exactly :meth:`register_collector` — at
        small N the two paths are bit-identical.
        """
        if collector in self._vectors:
            raise ProtocolViolationError(
                f"collector {collector!r} already registered with {self.governor!r}"
            )
        self._vectors[collector] = ReputationVector(
            provider_weights=SparseWeightMap(members, self.initial)
        )

    def vector(self, collector: str) -> ReputationVector:
        """The full vector for ``collector``.

        Raises:
            ProtocolViolationError: unknown collector.
        """
        try:
            return self._vectors[collector]
        except KeyError:
            raise ProtocolViolationError(
                f"collector {collector!r} not registered with {self.governor!r}"
            ) from None

    def collectors(self) -> Iterable[str]:
        """All registered collector ids."""
        return self._vectors.keys()

    def is_registered(self, collector: str) -> bool:
        """Whether ``collector`` currently holds a vector (churn-aware)."""
        return collector in self._vectors

    def weight(self, collector: str, provider: str) -> float:
        """``w_{j,i,k}`` shortcut."""
        return self.vector(collector).weight(provider)

    def weights_for(
        self, provider: str, collectors: Iterable[str]
    ) -> Mapping[str, float]:
        """The weights w.r.t. ``provider`` of the given collectors."""
        return {c: self.weight(c, provider) for c in collectors}

    # -- contiguous weight rows (screening hot path) ----------------------

    def _build_row(self, provider: str, collectors: tuple[str, ...]) -> WeightRow:
        vectors = tuple(self.vector(c) for c in collectors)
        weights = np.array([v.weight(provider) for v in vectors], dtype=float)
        return WeightRow(
            weights=weights,
            total=float(weights.sum()),
            _vectors=vectors,
            _versions=tuple(v._version for v in vectors),
        )

    def selection_row(
        self, provider: str, collectors: Sequence[str]
    ) -> WeightRow:
        """The contiguous weight row for ``collectors`` w.r.t. ``provider``.

        Memoized per ``(provider, collectors)`` key and invalidated when
        any underlying vector changes (identity *or* version — churn
        swaps vector objects, updates bump versions), so repeated
        screenings of the same reporter set skip both the per-collector
        dict walk and the re-normalization.  With the cache disabled the
        row is rebuilt every call; either way the numbers are computed by
        the exact same operations, keeping seeded runs bit-identical.

        Raises:
            ProtocolViolationError: unknown collector, or no entry for
                ``provider`` in some collector's vector.
        """
        collectors = tuple(collectors)
        if not perf.ACTIVE.reputation_cache:
            return self._build_row(provider, collectors)
        key = (provider, collectors)
        row = self._row_cache.get(key)
        if row is not None:
            vectors = self._vectors
            for i, c in enumerate(collectors):
                vec = vectors.get(c)
                if vec is not row._vectors[i] or vec._version != row._versions[i]:
                    row = None
                    break
        if row is not None:
            self._m_norm_hits.inc()
            return row
        self._m_norm_misses.inc()
        row = self._build_row(provider, collectors)
        if len(self._row_cache) >= _ROW_CACHE_SIZE:
            self._row_cache.clear()
        self._row_cache[key] = row
        return row

    # -- Algorithm 3 entry points ---------------------------------------

    def record_forge(self, collector: str) -> None:
        """Case 1: decrement ``w_forge`` for a forged upload."""
        self.vector(collector).forge -= 1
        self._m_updates.labels(case="forge").inc()

    def record_checked(self, collector: str, labeled_correctly: bool) -> None:
        """Case 2: ±1 on ``w_misreport`` for a checked transaction."""
        self.vector(collector).misreport += 1 if labeled_correctly else -1
        self._m_updates.labels(case="checked").inc()

    def apply_revealed_truth(
        self,
        provider: str,
        outcomes: Mapping[str, str],
        beta: float,
        gamma: float,
    ) -> None:
        """Case 3: multiplicative update once an unchecked truth is revealed.

        Args:
            provider: The transaction's provider ``p_k``.
            outcomes: collector id -> one of ``"correct"`` (×1),
                ``"wrong"`` (×gamma), ``"missed"`` (×beta) — exactly the
                prose of Section 3.4.2.  (The paper's Algorithm-3 listing
                ambiguously types the else-branch; the prose and the
                Theorem-1 potential argument fix correct→1, wrong→γ,
                missed→β, which we follow.)
            beta: Conceal discount.
            gamma: Mislabel discount ``gamma_tx`` for this transaction.
        """
        for collector, outcome in outcomes.items():
            if outcome == "correct":
                continue
            if outcome == "wrong":
                factor = gamma
                self.vector(collector).scale(provider, gamma)
            elif outcome == "missed":
                factor = beta
                self.vector(collector).scale(provider, beta)
            else:
                raise ProtocolViolationError(
                    f"unknown reveal outcome {outcome!r} for {collector!r}"
                )
            self._m_updates.labels(case="reveal").inc()
            self._m_magnitude.observe(-math.log(factor))

    def total_weight(self, provider: str, collectors: Iterable[str]) -> float:
        """Sum of weights w.r.t. ``provider`` over ``collectors``.

        Routed through the row cache; the sequential (left-to-right)
        Python sum is preserved so totals stay bit-identical with the
        cache on or off.
        """
        collectors = tuple(collectors)
        if not collectors:
            return 0
        if not perf.ACTIVE.reputation_cache:
            return sum(self.weight(c, provider) for c in collectors)
        return self.selection_row(provider, collectors).python_sum()

    # -- membership churn -------------------------------------------------

    def retire_collector(self, collector: str) -> ReputationVector:
        """Remove a collector's vector (left the alliance / crash-stopped).

        Returns the retired vector so a caller implementing a grace
        period can hold it aside.

        Raises:
            ProtocolViolationError: unknown collector.
        """
        vector = self.vector(collector)
        del self._vectors[collector]
        return vector

    def readmit_collector(
        self, collector: str, providers: Iterable[str], bootstrap: str = "median"
    ) -> None:
        """Re-admit a collector after churn (recovered from a crash).

        The per-provider bootstrap weight follows the same churn rules
        as :meth:`repro.baselines.base.ReputationPolicy.add_collector`:
        ``"median"`` inherits the typical incumbent's standing w.r.t.
        each provider, ``"initial"`` restarts at genesis trust, ``"min"``
        makes trust be re-earned from the worst incumbent's level.

        Raises:
            ProtocolViolationError: the collector is still registered.
            ConfigurationError: unknown bootstrap rule.
        """
        if collector in self._vectors:
            raise ProtocolViolationError(
                f"collector {collector!r} still registered with {self.governor!r}"
            )
        if bootstrap not in ("median", "initial", "min"):
            raise ConfigurationError(f"unknown bootstrap rule {bootstrap!r}")
        weights: dict[str, float] = {}
        for provider in providers:
            incumbents = [
                v.provider_weights[provider]
                for v in self._vectors.values()
                if provider in v.provider_weights
            ]
            if bootstrap == "initial" or not incumbents:
                weight = self.initial
            elif bootstrap == "median":
                weight = float(np.median(incumbents))
            else:
                weight = min(incumbents)
            weights[provider] = max(weight, WEIGHT_FLOOR)
        self._vectors[collector] = ReputationVector(provider_weights=weights)

    # -- durable state (checkpoint persistence) ---------------------------

    def export_state(self) -> dict:
        """JSON-safe sparse row payload for checkpoint pinning.

        Dense vectors are encoded sparsely too — entries still at the
        registration default are elided — so the payload size tracks the
        number of *touched* rows regardless of representation.  Floats
        survive the JSON round trip exactly (``repr`` round-trips), so a
        restored book is weight-for-weight identical.
        """
        collectors: dict[str, dict] = {}
        for cid, vec in self._vectors.items():
            pw = vec.provider_weights
            if isinstance(pw, SparseWeightMap):
                default = pw.default
                overrides = dict(pw.overrides)
            else:
                default = self.initial
                overrides = {p: w for p, w in pw.items() if w != default}
            collectors[cid] = {
                "default": default,
                "overrides": overrides,
                "misreport": vec.misreport,
                "forge": vec.forge,
            }
        return {"initial": self.initial, "collectors": collectors}

    def restore_state(self, state: Mapping) -> None:
        """Overwrite registered vectors from an :meth:`export_state` payload.

        Collectors must already be registered (the engine rebuilds the
        topology before restoring); entries absent from the payload's
        overrides keep their registration default, which is exactly the
        elision rule :meth:`export_state` applied.

        Raises:
            ProtocolViolationError: the payload names an unregistered
                collector.
        """
        for cid, row in state.get("collectors", {}).items():
            vec = self.vector(cid)
            overrides = row.get("overrides", {})
            pw = vec.provider_weights
            if isinstance(pw, SparseWeightMap):
                pw.overrides = dict(overrides)
                pw.default = float(row.get("default", self.initial))
                pw._bump()
            else:
                default = float(row.get("default", self.initial))
                for provider in pw:
                    pw[provider] = overrides.get(provider, default)
            vec.misreport = int(row.get("misreport", 0))
            vec.forge = int(row.get("forge", 0))
