"""The reputation game — Theorem 1's setting as a focused simulation.

Theorem 1 concerns one provider ``p_k``, the ``r`` collectors that
oversee him, and one governor: T transactions are recorded unchecked,
their real states are revealed after the fact, and the governor's
accumulated expected loss ``L_T`` is compared to the best collector's
accumulated loss ``S_min_T`` plus ``O(sqrt(T))``.

:class:`ReputationGame` runs exactly that process:

* per transaction, each collector reports a label (or conceals) per his
  behaviour model;
* the governor samples one reporter with probability proportional to
  his weight and incurs expected loss ``L_t = 2 W_wrong / (W_right +
  W_wrong)`` (realised loss 2 when the sampled label is wrong);
* the truth is revealed after a configurable latency of ``reveal_lag``
  transactions (0 = immediately, the theorem's idealisation; positive
  values reproduce the paper's U-latency discussion), triggering the
  case-3 multiplicative update with the paper's ``gamma_tx`` rule;
* collector losses accrue 2 per wrong label and 1 per concealment
  (matching the potential argument, where a miss costs ``beta`` =
  ``beta^1`` and a wrong label costs ``gamma >= beta^2``).

The game drives experiments E1 (regret), the beta/gamma ablations, and
the latency study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.agents.behaviors import CollectorBehavior
from repro.core.params import gamma_for, tuned_beta
from repro.core.regret import rwm_bound, theorem1_bound
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label

__all__ = ["GameResult", "ReputationGame"]


@dataclass
class GameResult:
    """Everything a regret experiment needs from one game run."""

    horizon: int
    r: int
    beta: float
    expected_loss: float
    realized_loss: float
    collector_losses: dict[str, float]
    final_weights: dict[str, float]
    expected_loss_curve: np.ndarray
    best_collector_curve: np.ndarray

    @property
    def s_min(self) -> float:
        """The best collector's accumulated loss ``S_min_T``."""
        return min(self.collector_losses.values())

    @property
    def best_collector(self) -> str:
        """Id of the best-behaving collector."""
        return min(self.collector_losses, key=self.collector_losses.get)

    @property
    def regret(self) -> float:
        """``L_T - S_min_T`` — what Theorem 1 bounds by O(sqrt(T))."""
        return self.expected_loss - self.s_min

    def theorem1_rhs(self) -> float:
        """Theorem 1's bound value for this run."""
        return theorem1_bound(self.s_min, self.horizon, self.r)

    def rwm_rhs(self) -> float:
        """The fixed-beta weighted-majority bound for this run."""
        return rwm_bound(self.s_min, self.r, self.beta)


@dataclass
class ReputationGame:
    """Simulate Theorem 1's reveal process for one provider.

    Args:
        behaviors: One behaviour per collector (index -> collector id
            ``c{i}``); Theorem 1 needs at least one well-behaved entry
            for the bound to be meaningful, but the game runs regardless.
        horizon: ``T`` — number of (unchecked) transactions.
        beta: Conceal discount; None selects the proof's tuned schedule
            ``1 - 4 sqrt(log(r)/T)``.
        p_valid: Probability a transaction is genuinely valid.
        reveal_lag: Transactions between burial and truth revelation
            (the paper's latency ``V``; 0 = immediate).
        seed: RNG seed (one generator drives truth, behaviours, and the
            governor's draws, in a fixed order).
        gamma_override: Force a fixed gamma (for the ablation that
            violates the paper's inequality); None uses the paper rule.
        track_curves: Record per-step cumulative curves (costs memory).
    """

    behaviors: Sequence[CollectorBehavior]
    horizon: int
    beta: float | None = None
    p_valid: float = 0.5
    reveal_lag: int = 0
    seed: int = 0
    gamma_override: float | None = None
    track_curves: bool = True
    #: Source-selection rule: "proportional" (the paper), "uniform" and
    #: "greedy" (ablations), or "wmajority" — follow the *weighted
    #: majority* label deterministically (the non-randomised WM
    #: algorithm; regret O(log r + S_min) but with a worse constant than
    #: RWM, the classic comparison from the expert-advice literature).
    selection: str = "proportional"
    collector_ids: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if len(self.behaviors) < 2:
            raise ConfigurationError("the game needs at least 2 collectors")
        if self.horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {self.horizon}")
        if not 0.0 <= self.p_valid <= 1.0:
            raise ConfigurationError(f"p_valid must be in [0, 1], got {self.p_valid}")
        if self.reveal_lag < 0:
            raise ConfigurationError("reveal_lag cannot be negative")
        if self.selection not in ("proportional", "uniform", "greedy", "wmajority"):
            raise ConfigurationError(f"unknown selection rule {self.selection!r}")
        self.collector_ids = tuple(f"c{i}" for i in range(len(self.behaviors)))

    def run(self) -> GameResult:
        """Play the game and return the losses and final weights."""
        r = len(self.behaviors)
        beta = self.beta if self.beta is not None else tuned_beta(r, self.horizon)
        rng = np.random.default_rng(self.seed)
        weights = {c: 1.0 for c in self.collector_ids}
        collector_losses = {c: 0.0 for c in self.collector_ids}
        expected_loss = 0.0
        realized_loss = 0.0
        expected_curve = np.zeros(self.horizon) if self.track_curves else np.zeros(0)
        best_curve = np.zeros(self.horizon) if self.track_curves else np.zeros(0)
        # Reveal pipeline: list of (due_step, labels, truth) awaiting update.
        pending: list[tuple[int, dict[str, Label], Label]] = []

        for t in range(self.horizon):
            truth_valid = bool(rng.random() < self.p_valid)
            truth = Label.from_bool(truth_valid)
            labels: dict[str, Label] = {}
            for cid, behavior in zip(self.collector_ids, self.behaviors, strict=True):
                label = behavior.label_for(truth_valid, rng)
                if label is not None:
                    labels[cid] = label
                # Collector loss: 2 wrong, 1 missed, 0 correct.
                if label is None:
                    collector_losses[cid] += 1.0
                elif label is not truth:
                    collector_losses[cid] += 2.0

            if labels:
                reporters = sorted(labels)
                w = np.array([weights[c] for c in reporters])
                mass = float(w.sum())
                if self.selection == "proportional":
                    probs = w / mass
                elif self.selection == "uniform":
                    probs = np.full(len(reporters), 1.0 / len(reporters))
                elif self.selection == "wmajority":
                    # Deterministic WM: all mass on the side with more
                    # reputation; model as choosing any reporter whose
                    # label equals the weighted-majority label.
                    from repro.ledger.transaction import Label as _L

                    mass_valid = sum(
                        weights[c] for c in reporters if labels[c] is _L.VALID
                    )
                    majority = (
                        _L.VALID if mass_valid * 2 >= mass else _L.INVALID
                    )
                    probs = np.array(
                        [1.0 if labels[c] is majority else 0.0 for c in reporters]
                    )
                    probs = probs / probs.sum()
                else:  # greedy: all mass on the max-weight reporter
                    probs = np.zeros(len(reporters))
                    probs[int(np.argmax(w))] = 1.0
                w_wrong = sum(
                    weights[c] for c in reporters if labels[c] is not truth
                )
                # Expected loss under the governor's *actual* rule uses the
                # actual selection probabilities.
                expected_loss += 2.0 * float(
                    sum(p for p, c in zip(probs, reporters) if labels[c] is not truth)
                )
                del w_wrong
                drawn = reporters[int(rng.choice(len(reporters), p=probs))]
                if labels[drawn] is not truth:
                    realized_loss += 2.0
            # (If every collector concealed, the governor has nothing to
            # sample; no loss accrues on this transaction.)

            pending.append((t + self.reveal_lag, labels, truth))
            while pending and pending[0][0] <= t:
                _due, old_labels, old_truth = pending.pop(0)
                self._apply_reveal(weights, old_labels, old_truth, beta)

            if self.track_curves:
                expected_curve[t] = expected_loss
                best_curve[t] = min(collector_losses.values())

        # Flush remaining reveals (the theorem reveals everything "sometime").
        for _due, old_labels, old_truth in pending:
            self._apply_reveal(weights, old_labels, old_truth, beta)

        return GameResult(
            horizon=self.horizon,
            r=r,
            beta=beta,
            expected_loss=expected_loss,
            realized_loss=realized_loss,
            collector_losses=collector_losses,
            final_weights=dict(weights),
            expected_loss_curve=expected_curve,
            best_collector_curve=best_curve,
        )

    def _apply_reveal(
        self,
        weights: dict[str, float],
        labels: dict[str, Label],
        truth: Label,
        beta: float,
    ) -> None:
        """Case-3 multiplicative update for one revealed transaction."""
        w_right = sum(weights[c] for c, lab in labels.items() if lab is truth)
        w_wrong = sum(weights[c] for c, lab in labels.items() if lab is not truth)
        total = w_right + w_wrong
        loss = 0.0 if total == 0.0 else 2.0 * w_wrong / total
        gamma = (
            self.gamma_override
            if self.gamma_override is not None
            else gamma_for(beta, loss)
        )
        for cid in self.collector_ids:
            label = labels.get(cid)
            if label is None:
                weights[cid] = max(weights[cid] * beta, 1e-300)
            elif label is not truth:
                weights[cid] = max(weights[cid] * gamma, 1e-300)
