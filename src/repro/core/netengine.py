"""Packet-level protocol engine over the simulated synchronous network.

:class:`NetworkedProtocolEngine` executes the same protocol as
:class:`repro.core.protocol.ProtocolEngine`, but every interaction is a
real message through :class:`~repro.network.simnet.SyncNetwork` +
:class:`~repro.network.broadcast.AtomicBroadcast`, with the timing
structure of Algorithm 2:

* providers broadcast into per-collector *feed* groups at round start;
* collectors label on delivery and atomically broadcast uploads to the
  *uploads* group (all governors);
* each governor starts a Δ timer on the **first** report of a
  transaction (``starttime(tx, Δ)``) and screens it when the timer
  fires (``endtime(tx)``) — per-transaction, not per-batch;
* at the round cutoff the leader packs its screened records into a
  block and broadcasts it on the *blocks* group; every governor appends
  on delivery;
* providers then read the block from the store and send ``argue``
  messages point-to-point to every governor.

Message counts come from the network's real counters
(``engine.network.stats``), which lets tests cross-check the in-process
engine's analytic accounting against packet-level truth.

The engine is slower than the in-process one (every payload is a
scheduled event), so the big statistical experiments use
``ProtocolEngine``; this engine is the fidelity reference for
integration tests and the Δ-timing experiments.

**Fault tolerance** (``resilience=True``): the engine can run under a
seeded :class:`~repro.faults.FaultPlan` (``install_faults``) and still
uphold its safety properties.  Feed and upload traffic flows through an
ack/retransmit :class:`~repro.network.reliable.ReliableChannel`; the
block/upload broadcast groups repair sequence gaps via NACKs to a
sequencer endpoint with a deterministic backup
(:meth:`~repro.network.broadcast.AtomicBroadcast.enable_gap_repair`);
a crashed governor loses its volatile screening buffer, is retired from
leadership, and on recovery rejoins via
:func:`repro.ledger.sync.sync_replica` plus broadcast-cursor catch-up;
a crashed collector is retired from every governor's reputation book
and re-admitted under the membership churn rules (median bootstrap)
when it returns.  A crashed elected leader fails over deterministically
to the next live governor at pack time.

**Safety auditing & quarantine** (``audit``, on by default — see
:mod:`repro.audit.config`): every governor runs a
:class:`~repro.audit.SafetyAuditor`.  After appending a block each
governor sends a signed :class:`~repro.consensus.messages.CommitVote`
to every peer; a governor that signs two different hashes for one
serial (equivocation) hands any observer holding both votes a
*provable* violation.  A vote that contradicts the receiver's own
committed hash is forwarded to all peers as evidence, so the peer
subset that received the conflicting vote completes the proof.  On a
provable violation the engine **quarantines** the culprit: its
payloads are suppressed at every honest receiver, it is excluded from
leader election, and (for collectors) it is retired from every
reputation book.  Readmission goes through the same median-bootstrap
churn path as crash recovery (:meth:`release_quarantine`).  Audit
traffic rides a fixed-delay, fault-exempt path that consumes no RNG
from any simulation stream, so seeded ledgers are bit-identical with
the auditor on or off (locked in by ``tests/test_audit.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import perf
from repro.agents.behaviors import CollectorBehavior, HonestBehavior
from repro.agents.collector import Collector
from repro.agents.governor import Governor
from repro.agents.provider import Provider
from repro.audit import config as audit_config
from repro.audit.auditor import AuditViolation, SafetyAuditor, ViolationType
from repro.audit.config import AuditConfig
from repro.consensus.messages import CommitVote
from repro.consensus.pos import LeaderElection
from repro.consensus.stake import StakeLedger
from repro.core.params import ProtocolParams
from repro.core.rewards import distribute_rewards
from repro.crypto.identity import IdentityManager, Role
from repro.crypto.signatures import sign
from repro.exceptions import (
    ConfigurationError,
    ProtocolViolationError,
    SimulationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.ledger.block import Block
from repro.ledger.chain import Ledger
from repro.ledger.properties import RunTranscript
from repro.ledger.store import BlockStore
from repro.ledger.sync import sync_replica
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    LabeledTransaction,
    SignedTransaction,
    TxRecord,
    make_signed_transaction,
)
from repro.ledger.validation import CountingOracle, GroundTruthOracle
from repro.network.broadcast import AtomicBroadcast
from repro.network.reliable import ReliableChannel
from repro.network.simnet import Message, Simulator, SyncNetwork
from repro.network.topology import Topology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.storage.checkpoints import reputation_digest
from repro.storage.durable import StorageConfig, open_durable_store, storage_metrics
from repro.storage.recovery import RecoveryReport
from repro.workloads.generator import TxSpec

__all__ = [
    "ArgueRequest",
    "NetworkedRoundResult",
    "NetworkedProtocolEngine",
    "RoundContext",
    "SEQUENCER_PRIMARY",
    "SEQUENCER_BACKUP",
]

#: Dedicated network identities of the broadcast sequencer's repair
#: endpoints (the Identity Manager's ordering service and its replica).
#: Distinct from every p*/c*/g* topology id.
SEQUENCER_PRIMARY = "seq-primary"
SEQUENCER_BACKUP = "seq-backup"


@dataclass(frozen=True)
class ArgueRequest:
    """A provider's ``argue(tx, s)`` message to a governor."""

    provider: str
    tx_id: str
    serial: int
    kind: str = "argue"


@dataclass
class NetworkedRoundResult:
    """Outcome of one networked round."""

    round_number: int
    leader: str
    block: Block
    argues_sent: int
    rewards: Mapping[str, float]


@dataclass
class RoundContext:
    """In-flight state of a phase-split round (see :meth:`begin_round`).

    :meth:`NetworkedProtocolEngine.run_round` is split into
    ``begin_round`` / ``begin_argue`` / ``complete_round`` so a
    :class:`~repro.sharding.ShardCoordinator` can start one round on
    *every* shard engine and drain them all with a single shared
    ``sim.run`` — the shards' rounds overlap in simulated time instead
    of running back to back.  The context carries everything the later
    phases need; callers must advance the shared simulator to
    ``drain_until`` between ``begin_round`` and ``begin_argue``, and to
    ``begin_argue``'s returned time before ``complete_round``.
    """

    round_number: int
    t0: float
    cutoff: float
    drain_until: float
    specs_count: int
    elected: str
    packed: dict
    actual_leader: dict
    argue_start: float = 0.0
    argues_before: int = 0
    block: Block | None = None
    leader: str = ""


class NetworkedProtocolEngine:
    """The protocol over real (simulated) packets.

    Args:
        topology: Node link structure.
        params: Protocol parameters; ``params.delta`` is the screening
            timer and must cover the upload-arrival spread, i.e. be at
            least ``2 * max_delay`` (checked at construction).
        behaviors: collector id -> behaviour (honest default).
        seed: Master seed for agents, network latencies, and draws.
        min_delay / max_delay: Channel latency bounds (the synchrony
            assumption's Δ-net).
        stake: governor id -> stake units (default 1 each).
        resilience: Enable the fault-tolerance machinery — reliable
            feed/upload delivery, broadcast gap repair with sequencer
            failover, and crash-recovery wiring.  Off by default: the
            fault-free engine's packet counts stay bit-identical to the
            pre-resilience implementation.
        obs: Optional :class:`~repro.obs.MetricsRegistry` threaded
            through every layer — network, broadcast, reliable channel,
            governors, reputation books — plus engine-level counters
            and sim-time spans (``round`` / ``pack`` / ``drain_recovery``).
            Same no-op convention as ``resilience``: absent or disabled,
            runs are bit-identical (see OBSERVABILITY.md).
        audit: Safety-auditor knobs; None snapshots the process-wide
            :mod:`repro.audit.config` switchboard (auditor ON by
            default).  With no violations present, auditor-on and
            auditor-off seeded runs produce bit-identical ledgers.
        sim: Optional externally owned :class:`~repro.network.simnet.Simulator`.
            When given, the engine schedules on that shared clock instead
            of creating its own — this is how a
            :class:`~repro.sharding.ShardCoordinator` runs ``S`` engines
            side by side in one simulated timeline.  The engine still
            owns its network, broadcast layer, and identity manager.
        network_factory: Optional transport backend constructor, called
            as ``factory(sim, min_delay=..., max_delay=..., seed=...,
            obs=...)``.  Defaults to :class:`SyncNetwork`; a cluster
            harness passes :class:`~repro.network.realnet.RealNetwork`
            (pre-bound to its custodian peers) so the identical engine
            runs over real sockets — see DESIGN.md §"Transport backend".
    """

    def __init__(
        self,
        topology: Topology,
        params: ProtocolParams,
        behaviors: Mapping[str, CollectorBehavior] | None = None,
        seed: int = 0,
        min_delay: float = 0.005,
        max_delay: float = 0.05,
        stake: Mapping[str, int] | None = None,
        resilience: bool = False,
        obs: MetricsRegistry | None = None,
        audit: AuditConfig | None = None,
        sim: Simulator | None = None,
        storage: StorageConfig | None = None,
        network_factory: Callable[..., SyncNetwork] | None = None,
    ):
        if params.delta < 2 * max_delay:
            raise ConfigurationError(
                f"screening timer delta={params.delta} must be >= 2*max_delay="
                f"{2 * max_delay} to cover the report spread"
            )
        self.topology = topology
        self.params = params
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.im = IdentityManager(seed=seed, obs=self.obs)
        self.oracle = GroundTruthOracle()
        self.transcript = RunTranscript()
        # The storage_* family registers unconditionally (like audit_*)
        # so the telemetry inventory is identical with durability off.
        self._m_storage = storage_metrics(self.obs)
        self.recovery_report: RecoveryReport | None = None
        if storage is not None:
            # Opening the store IS crash recovery: segments are
            # replayed and verified, corrupt tails truncated.  The
            # governors' replicas are re-anchored below, once built.
            self.store, self.recovery_report = open_durable_store(
                storage,
                obs=self.obs,
                book_digest_fn=lambda: reputation_digest(
                    {gid: gov.book for gid, gov in self.governors.items()}
                ),
                book_state_fn=lambda: {
                    gid: gov.book.export_state()
                    for gid, gov in self.governors.items()
                },
            )
        else:
            self.store = BlockStore()
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.obs.bind_clock(lambda: self.sim.now)
        # The transport backend is pluggable behind the narrow
        # repro.network.transport.Transport surface: the default is the
        # discrete-event SyncNetwork; a harness passes a factory that
        # builds e.g. repro.network.realnet.RealNetwork with the same
        # delay bounds and seed, so the engine (and every layer above
        # the network) runs unmodified over real sockets.
        factory = network_factory if network_factory is not None else SyncNetwork
        self.network = factory(
            self.sim, min_delay=min_delay, max_delay=max_delay, seed=seed + 1,
            obs=self.obs,
        )
        self.broadcast = AtomicBroadcast(self.network, obs=self.obs)
        self.resilience = resilience
        self.channel: ReliableChannel | None = (
            ReliableChannel(self.network, max_retries=5, obs=self.obs)
            if resilience
            else None
        )
        self._m_rounds = self.obs.counter(
            "engine_rounds_total", "Protocol rounds executed"
        )
        self._m_tx_offered = self.obs.counter(
            "engine_tx_offered_total", "Workload transactions offered to providers"
        )
        self._m_engine_argues = self.obs.counter(
            "engine_argues_total", "Argue messages raised by providers"
        )
        self._m_block_size = self.obs.histogram(
            "engine_block_size",
            "Records packed per block",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        self._m_crash_events = self.obs.counter(
            "engine_crash_events_total",
            "Node crash/recover transitions applied by the engine",
            labels=("event",),
        )
        self._m_audit_quarantines = self.obs.counter(
            "audit_quarantines_total",
            "Nodes quarantined on a provable violation, by role",
            labels=("role",),
        )
        self._m_audit_votes = self.obs.counter(
            "audit_commit_votes_total",
            "Commit votes sent, by origin (own vote vs forwarded evidence)",
            labels=("origin",),
        )
        self._m_receipt_dups = self.obs.counter(
            "shard_receipt_dups_total",
            "Duplicate cross-shard receipt deliveries discarded at a governor",
        )
        self.injector: FaultInjector | None = None
        self._crashed: set[str] = set()
        # (sim time, "crash"/"recover", node id, blocks synced on recovery)
        self.fault_log: list[tuple[float, str, str, int]] = []
        # -- safety auditing / quarantine -------------------------------
        self.audit = audit if audit is not None else audit_config.get_config()
        self.harness_auditor = SafetyAuditor("harness", im=None, obs=self.obs)
        self._quarantined: set[str] = set()
        # (sim time, round, node id, violation type)
        self.quarantine_log: list[tuple[float, int, str, str]] = []
        # gid -> vote strategy override (Byzantine equivocation hook);
        # called as strategy(gid, block, peers) -> {peer: CommitVote}.
        self._vote_strategies: dict = {}
        # evidence-forward dedup: (forwarder, vote governor, serial, hash)
        self._forwarded_votes: set[tuple] = set()
        self._master = np.random.default_rng(seed)
        self._round = 0
        self._reevaluated_queue: dict[str, TxRecord] = {}
        self._round_records: dict[str, list[TxRecord]] = {}
        # tx ids already packed into some block: the pack-time dedup
        # filter that lets late-screened records carry across rounds
        # without a later leader re-packing an on-chain transaction.
        self._packed_tx_ids: set[str] = set()
        self._argues_sent = 0
        self.rewards_paid: dict[str, float] = {}
        # -- cross-shard receipts (enable_xshard) -----------------------
        # Relay endpoint id + signing key; None until a ShardCoordinator
        # enables cross-shard commits on this engine.  Enrolment is lazy
        # so non-sharded runs stay bit-identical (no extra key draw).
        self._xshard_relay: str | None = None
        self._relay_key = None
        # gid -> receipt_id -> receipt awaiting pack at that governor.
        self._receipt_buffers: dict[str, dict[str, object]] = {}
        # receipt ids already committed here (replay-proofing).
        self._applied_receipt_ids: set[str] = set()
        # Live collector -> provider links.  Starts as the topology's
        # static view but, unlike the frozen Topology, tracks epoch
        # migrations (adopt/release) so churn readmission keeps working
        # for collectors the original topology never knew.
        self.collector_providers: dict[str, tuple[str, ...]] = {
            cid: topology.providers_of(cid) for cid in topology.collectors
        }

        behaviors = dict(behaviors or {})
        unknown = set(behaviors) - set(topology.collectors)
        if unknown:
            raise ConfigurationError(f"behaviours for unknown collectors: {sorted(unknown)}")

        # -- enrolment and agents ---------------------------------------
        self.providers: dict[str, Provider] = {}
        for pid in topology.providers:
            key = self.im.enroll(pid, Role.PROVIDER)
            self.providers[pid] = Provider(
                provider_id=pid, key=key, linked_collectors=topology.collectors_of(pid)
            )
        self.collectors: dict[str, Collector] = {}
        for cid in topology.collectors:
            key = self.im.enroll(cid, Role.COLLECTOR)
            self.collectors[cid] = Collector(
                collector_id=cid,
                key=key,
                linked_providers=topology.providers_of(cid),
                behavior=behaviors.get(cid, HonestBehavior()),
                rng=np.random.default_rng(self._master.integers(2**63)),
            )
            for pid in topology.providers_of(cid):
                self.im.register_link(cid, pid)
        self.governors: dict[str, Governor] = {}
        for gid in topology.governors:
            key = self.im.enroll(gid, Role.GOVERNOR)
            gov = Governor(
                governor_id=gid,
                key=key,
                params=params,
                im=self.im,
                oracle=CountingOracle(inner=self.oracle),
                rng=np.random.default_rng(self._master.integers(2**63)),
                obs=self.obs,
            )
            gov.register_topology(topology)
            self.governors[gid] = gov
            self._round_records[gid] = []
            self._receipt_buffers[gid] = {}
        # One auditor per governor (created even when disabled, so the
        # audit_* metric families are always registered; disabled
        # configs simply never call into them).
        self.auditors: dict[str, SafetyAuditor] = {
            gid: SafetyAuditor(gid, im=self.im, obs=self.obs)
            for gid in topology.governors
        }

        # -- restart-from-disk hand-off ---------------------------------
        # A durable store that recovered state re-seeds every governor's
        # replica: anchored at the checkpoint when the prefix was
        # compacted, then fast-forwarded through the replayed blocks via
        # the PR-1 rejoin path (sync_replica).  Peer sync (sync_from_peer)
        # later covers only the suffix the disk didn't have.
        if self.store.height > 0 or self.store.base_serial > 0:
            base = self.store.base_serial
            for gid, gov in self.governors.items():
                if base > 0:
                    gov.ledger = Ledger.from_checkpoint(
                        owner=gid, serial=base, tip_hash=self.store.base_hash
                    )
                sync_replica(gov.ledger, self.store)
            for serial in range(base + 1, self.store.height + 1):
                for record in self.store.retrieve(serial).tx_list:
                    self._packed_tx_ids.add(record.tx.tx_id)
            # Resume the round counter past the recovered tip so freshly
            # packed blocks never reuse a committed round number.
            self._round = (
                self.store.retrieve(self.store.height).round_number
                if self.store.height > base
                else base
            )
            self._restore_books_from_checkpoint()

        initial_stake = dict(stake) if stake else {g: 1 for g in topology.governors}
        self.stake = StakeLedger.from_balances(initial_stake)
        self.election = LeaderElection(im=self.im, governor_order=list(topology.governors))

        # -- network wiring ----------------------------------------------
        for cid in topology.collectors:
            self.broadcast.create_group(f"feed:{cid}", [cid])
        self.broadcast.create_group("uploads", list(topology.governors))
        self.broadcast.create_group("blocks", list(topology.governors))

        # With resilience on, nodes register behind the reliable channel
        # (plain traffic passes through it untouched) and the lossless
        # groups ride the ack/retransmit transport.
        register = self.channel.register if self.channel is not None else self.network.register
        for cid in topology.collectors:
            register(cid, self._collector_on_message(cid))
            self.broadcast.register_handler(
                f"feed:{cid}", cid, self._collector_on_feed(cid)
            )
        for gid in topology.governors:
            register(gid, self._governor_on_message(gid))
            self.broadcast.register_handler("uploads", gid, self._governor_on_upload(gid))
            self.broadcast.register_handler("blocks", gid, self._governor_on_block(gid))
        for pid in topology.providers:
            register(pid, lambda message: None)
        if self.resilience:
            reliable_groups = {f"feed:{cid}" for cid in topology.collectors}
            reliable_groups.add("uploads")
            self.broadcast.set_transport(self.channel, reliable_groups)
            self.broadcast.enable_gap_repair(
                primary=SEQUENCER_PRIMARY,
                backup=SEQUENCER_BACKUP,
                timeout=4 * max_delay,
            )

        # Per-governor Δ timers: (gid, tx_id) -> scheduled (once).
        self._timers_started: set[tuple[str, str]] = set()

    def _restore_books_from_checkpoint(self) -> None:
        """Re-seed reputation books from the recovered checkpoint payload.

        The checkpoint carries the sparse book state pinned by its
        ``book_digest``; restoring it means a restarted node resumes with
        the reputation it had at checkpoint time instead of re-learning
        from scratch.  The digest is re-verified after the restore — on
        any mismatch (tampered payload, books from a different topology)
        the restore is rolled back to pristine initial books and the
        divergence is surfaced as a storage corruption metric.
        """
        report = self.recovery_report
        ckpt = report.checkpoint if report is not None else None
        if ckpt is None or ckpt.book_state is None:
            return
        pristine = {gid: gov.book.export_state() for gid, gov in self.governors.items()}
        try:
            for gid, gov in self.governors.items():
                state = ckpt.book_state.get(gid)
                if state is None:
                    raise KeyError(gid)
                gov.book.restore_state(state)
            digest = reputation_digest(
                {gid: gov.book for gid, gov in self.governors.items()}
            )
            if ckpt.book_digest and digest != ckpt.book_digest:
                raise ValueError("restored books do not match the pinned digest")
        except (KeyError, ValueError, TypeError, ProtocolViolationError):
            for gid, gov in self.governors.items():
                gov.book.restore_state(pristine[gid])
            self._m_storage["corruptions"].labels(kind="book-state-mismatch").inc()

    # -- handlers ---------------------------------------------------------

    def _collector_on_message(self, cid: str):
        def handle(message: Message) -> None:
            self.broadcast.on_message(cid, message)
        return handle

    def _collector_on_feed(self, cid: str):
        def handle(sender: str, tx: SignedTransaction) -> None:
            for labeled in self.collectors[cid].process_all(tx, self.oracle):
                self.transcript.collector_uploads.add(tx.tx_id)
                self.broadcast.broadcast("uploads", cid, labeled)
        return handle

    def _governor_on_message(self, gid: str):
        def handle(message: Message) -> None:
            payload = message.payload
            if isinstance(payload, CommitVote):
                self._on_commit_vote(gid, payload)
                return
            if getattr(payload, "kind", None) == "xshard-receipt":
                self._ingest_receipt(gid, payload)
                return
            if self.broadcast.on_message(gid, message):
                return
            if isinstance(payload, ArgueRequest):
                if message.sender in self._quarantined:
                    return
                self._governor_on_argue(gid, payload)
        return handle

    def _governor_on_upload(self, gid: str):
        def handle(sender: str, upload: LabeledTransaction) -> None:
            # Quarantine containment: a provably-Byzantine collector's
            # uploads are suppressed at every honest receiver.  (The
            # broadcast seqno was still consumed upstream, so honest
            # traffic behind it keeps flowing.)
            if sender in self._quarantined:
                return
            if self.audit.enabled and self.audit.commit_votes:
                violation = self.auditors[gid].observe_upload(upload, self._round)
                if (
                    violation is not None
                    and violation.provable
                    and self.audit.quarantine
                ):
                    self.quarantine_node(violation.culprit, violation)
                    return
            governor = self.governors[gid]
            tx_id = upload.tx.tx_id
            fresh = not governor.has_buffered(tx_id)
            if governor.ingest_upload(upload) and fresh:
                # Algorithm 2's starttime(tx, Δ) — first report arms it.
                key = (gid, tx_id)
                if key not in self._timers_started:
                    self._timers_started.add(key)
                    self.sim.schedule_after(
                        self.params.delta,
                        lambda: self._governor_endtime(gid, tx_id),
                        label=f"endtime:{gid}:{tx_id[:8]}",
                    )
        return handle

    def _governor_endtime(self, gid: str, tx_id: str) -> None:
        """Algorithm 2's endtime(tx): screen when the Δ timer fires."""
        governor = self.governors[gid]
        if not governor.has_buffered(tx_id):
            return  # already screened (defensive; timers arm only once)
        record = governor.screen_single(tx_id)
        if record is not None:
            self._round_records[gid].append(record)

    def _governor_on_block(self, gid: str):
        def handle(sender: str, block: Block) -> None:
            governor = self.governors[gid]
            deliver = block
            if self.audit.enabled and self.audit.block_integrity:
                store_hash = (
                    self.store.retrieve(block.serial).hash()
                    if self.store.base_serial < block.serial <= self.store.height
                    else None
                )
                violations = self.auditors[gid].audit_block(
                    block,
                    expected_serial=governor.ledger.height + 1,
                    expected_prev=governor.ledger.tip_hash(),
                    round_number=self._round,
                    store_hash=store_hash,
                )
                # Containment for in-flight block tampering: fall back to
                # the authentic published copy so the local chain stays
                # intact (the tampered copy's own hash would poison the
                # next append).
                if (
                    any(v.type is ViolationType.BLOCK_TAMPER for v in violations)
                    and store_hash is not None
                ):
                    deliver = self.store.retrieve(block.serial)
            governor.ledger.append(deliver)
            self._clear_packed_receipts(gid, deliver)
            if (
                self.audit.enabled
                and self.audit.commit_votes
                and gid not in self._crashed
                and gid not in self._quarantined
            ):
                self._send_commit_votes(gid, deliver)
        return handle

    def _governor_on_argue(self, gid: str, request: ArgueRequest) -> None:
        record = self.governors[gid].handle_argue(request.tx_id)
        if record is not None:
            self._reevaluated_queue[request.tx_id] = record

    # -- cross-shard receipts (sharded deployments) ------------------------

    def enable_xshard(self, relay_id: str) -> None:
        """Accept cross-shard receipts relayed to this shard's governors.

        Enrols ``relay_id`` as the shard's receipt-relay identity (a
        provider-role member of this engine's alliance: receipt records
        carry its signature, so ``SafetyAuditor.audit_block`` verifies
        them like any other on-chain record) and registers its network
        endpoint.  Called once per engine by the
        :class:`~repro.sharding.ShardCoordinator`; a plain deployment
        never calls it and is bit-identical to pre-sharding builds.
        """
        if self._xshard_relay is not None:
            raise ConfigurationError(
                f"cross-shard relay already enabled ({self._xshard_relay!r})"
            )
        self._xshard_relay = relay_id
        self._relay_key = self.im.enroll(relay_id, Role.PROVIDER)
        register = (
            self.channel.register if self.channel is not None else self.network.register
        )
        register(relay_id, lambda message: None)

    def inject_receipts(self, receipts: Sequence) -> None:
        """Fan relayed cross-shard receipts out to every governor.

        The barrier-time injection point of the shard executors: a
        :class:`~repro.parallel.SerialBackend` calls it directly and a
        :class:`~repro.parallel.ParallelBackend` worker calls it when a
        pickled relay batch arrives over its command pipe.  Receipts are
        sent from the relay endpoint to the **full** governor set (so a
        relay survives any single governor crash) in batch order —
        latency draws consume this engine's network RNG in exactly the
        order the serial coordinator's per-receipt relays would, which
        is what keeps parallel ledgers bit-identical to serial ones.
        """
        if self._xshard_relay is None:
            raise ConfigurationError("cross-shard relay not enabled on this engine")
        for receipt in receipts:
            for gid in self.topology.governors:
                self.network.send(self._xshard_relay, gid, receipt)

    def carryover_depth(self) -> int:
        """Records queued for re-evaluation (argue outcomes) next round.

        Part of the phase-command surface: shard drivers budget each
        round's fresh specs as ``b_limit - carryover_depth()`` so the
        re-packed records never push a block past the universal bound.
        """
        return len(self._reevaluated_queue)

    def recovery_lagging(self) -> bool:
        """True while unrepaired broadcast gaps remain (resilience only).

        One probe of the :meth:`drain_recovery` exit condition, with the
        same repair-triggering side effect (a scan NACKs every lagging
        member).  Shard drivers call it between barrier-synchronized
        drain slices so every backend walks the end-of-run recovery
        drain through identical clock targets — keeping the final
        simulated clock, and hence reported sim-time throughput,
        identical between serial and multi-process execution.
        """
        if not self.resilience:
            return False
        return (
            self.broadcast.force_repair_scan() != 0
            or self.broadcast.pending_gap_total() != 0
        )

    def _ingest_receipt(self, gid: str, receipt) -> None:
        """Buffer a relayed receipt at ``gid`` for the next pack, deduped.

        Replay-proofing happens here and at pack time: a receipt id that
        is already buffered or already on chain is discarded (and
        counted), so fault-injector duplicates and coordinator
        re-relays can never commit twice.
        """
        if gid in self._crashed or gid in self._quarantined:
            return
        rid = receipt.receipt_id
        if rid in self._applied_receipt_ids or rid in self._receipt_buffers[gid]:
            self._m_receipt_dups.inc()
            return
        self._receipt_buffers[gid][rid] = receipt

    def _receipt_record(self, receipt) -> TxRecord:
        """Materialise a buffered receipt as a committable ledger record.

        The transaction is signed by the shard's relay identity with a
        nonce and timestamp derived from the receipt itself, so every
        governor (and every retry) derives the **same** tx id — the
        pack-time ``_packed_tx_ids`` filter then guarantees at-most-once
        commitment even if a duplicate slipped past the buffer dedup.
        """
        tx = make_signed_transaction(
            self._relay_key,
            payload={
                "xshard_receipt": receipt.receipt_id,
                "home_shard": receipt.home_shard,
                "origin_tx": receipt.tx_id,
            },
            timestamp=float(receipt.home_serial),
            nonce=int(receipt.receipt_id[:12], 16),
        )
        self.oracle.assign(tx, True)
        # The relay is the provider *and* collector of record for the
        # receipt (it was already screened on its home shard), so the
        # Almost-No-Creation transcript sees both broadcast legs.
        self.transcript.provider_broadcasts.add(tx.tx_id)
        self.transcript.collector_uploads.add(tx.tx_id)
        return TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)

    def _receipt_records(self, gid: str, budget: int) -> list[TxRecord]:
        """The leader's buffered receipts, as records, up to ``budget``.

        Receipts already on chain are skipped (and evicted): a duplicated
        relay message arriving in the window between one leader's pack
        and the block's observation can be re-buffered at the *next*
        round's leader, whose buffer dedup in ``_ingest_receipt`` ran
        before ``_applied_receipt_ids`` learned the id. Checking the
        applied set again at pack time closes that replay window.
        """
        if self._xshard_relay is None or budget <= 0:
            return []
        buffer = self._receipt_buffers[gid]
        stale = [rid for rid in buffer if rid in self._applied_receipt_ids]
        for rid in stale:
            del buffer[rid]
            self._m_receipt_dups.inc()
        buffered = sorted(
            buffer.values(),
            key=lambda r: (r.home_serial, r.receipt_id),
        )
        return [self._receipt_record(receipt) for receipt in buffered[:budget]]

    def _clear_packed_receipts(self, gid: str, block: Block) -> None:
        """Drop receipts ``gid`` buffered once the block carries them."""
        if self._xshard_relay is None:
            return
        for record in block.tx_list:
            payload = record.tx.body.payload
            if isinstance(payload, dict) and "xshard_receipt" in payload:
                rid = payload["xshard_receipt"]
                self._applied_receipt_ids.add(rid)
                self._receipt_buffers[gid].pop(rid, None)

    # -- safety auditing: commit votes & quarantine ------------------------

    def make_commit_vote(self, gid: str, serial: int, block_hash: bytes) -> CommitVote:
        """Build ``gid``'s signed commit vote for (serial, block_hash).

        Public so Byzantine vote strategies (equivocation scenarios) can
        mint *validly signed* conflicting votes — the provable-violation
        definition requires real signatures on both sides.
        """
        message = ("audit-commit", gid, serial, block_hash, self._round)
        return CommitVote(
            governor=gid,
            serial=serial,
            block_hash=block_hash,
            round_number=self._round,
            signature=sign(self.governors[gid].key, message),
        )

    def set_vote_strategy(self, gid: str, strategy) -> None:
        """Override ``gid``'s commit-vote behaviour (Byzantine hook).

        ``strategy(gid, block, peers) -> {peer: CommitVote}`` replaces
        the honest send-same-vote-to-everyone flow; pass ``None`` to
        restore honesty.
        """
        if strategy is None:
            self._vote_strategies.pop(gid, None)
        else:
            self._vote_strategies[gid] = strategy

    def _send_commit_votes(self, gid: str, block: Block) -> None:
        """Send ``gid``'s post-append commit vote to every peer governor.

        Votes travel at exactly ``max_delay`` (no latency RNG draw) and
        are fault-exempt by kind, so the auditor layer consumes nothing
        from any seeded simulation stream.
        """
        peers = [g for g in self.topology.governors if g != gid]
        strategy = self._vote_strategies.get(gid)
        if strategy is not None:
            votes = strategy(gid, block, peers)
        else:
            vote = self.make_commit_vote(gid, block.serial, block.hash())
            votes = {peer: vote for peer in peers}
        for peer, vote in votes.items():
            self.network.send(
                gid, peer, vote, fixed_delay=self.network.max_delay
            )
            self._m_audit_votes.labels(origin="own").inc()

    def _on_commit_vote(self, gid: str, vote: CommitVote) -> None:
        """Receiver side of the vote flow: audit, forward evidence, contain."""
        if not (self.audit.enabled and self.audit.commit_votes):
            return
        if gid in self._crashed or gid in self._quarantined:
            return
        if vote.governor in self._quarantined:
            return  # already contained; further evidence is redundant
        governor = self.governors[gid]
        own_hash = (
            governor.ledger.retrieve(vote.serial).hash()
            if 1 <= vote.serial <= governor.ledger.height
            else None
        )
        violation, mismatch = self.auditors[gid].ingest_vote(
            vote, own_hash, self._round
        )
        if mismatch:
            # The vote contradicts this governor's committed hash: forward
            # it verbatim so peers holding the *other* signed vote can
            # complete the two-signatures proof.
            self._forward_evidence(gid, vote)
        if violation is not None and violation.provable and self.audit.quarantine:
            self.quarantine_node(violation.culprit, violation)

    def _forward_evidence(self, gid: str, vote: CommitVote) -> None:
        key = (gid, vote.governor, vote.serial, vote.block_hash)
        if key in self._forwarded_votes:
            return
        self._forwarded_votes.add(key)
        for peer in self.topology.governors:
            if peer in (gid, vote.governor):
                continue
            self.network.send(
                gid, peer, vote, fixed_delay=self.network.max_delay
            )
            self._m_audit_votes.labels(origin="forward").inc()

    @property
    def quarantined_nodes(self) -> frozenset[str]:
        """Nodes currently quarantined on a provable violation."""
        return frozenset(self._quarantined)

    def quarantine_node(self, node_id: str, violation: AuditViolation) -> None:
        """Contain a provably-Byzantine node.

        Its uploads/argues are suppressed at every honest receiver, it
        is skipped by leader election, and a collector is additionally
        retired from every reputation book (the churn rules).  The
        network link stays up: quarantine is an application-layer
        verdict, not a crash.
        """
        if node_id in self._quarantined:
            return
        self._quarantined.add(node_id)
        if node_id in self.governors:
            role = "governor"
        elif node_id in self.collectors:
            role = "collector"
            for governor in self.governors.values():
                if governor.book.is_registered(node_id):
                    governor.drop_collector(node_id)
            self.store.forget_reader(node_id)
        else:
            role = "other"
        self.quarantine_log.append(
            (self.sim.now, self._round, node_id, violation.type.value)
        )
        self._m_audit_quarantines.labels(role=role).inc()

    def release_quarantine(self, node_id: str) -> None:
        """Readmit a quarantined node through the churn path.

        Mirrors crash recovery: a governor resyncs its replica from the
        published store and fast-forwards its broadcast cursors; a
        collector skips its missed feed and re-enters every reputation
        book at the incumbents' **median** weight (the bootstrap rule) —
        readmission never restores pre-quarantine standing.
        """
        if node_id not in self._quarantined:
            return
        self._quarantined.discard(node_id)
        if node_id in self.governors:
            sync_replica(self.governors[node_id].ledger, self.store)
            for group in ("uploads", "blocks"):
                self.broadcast.skip_to(
                    group, node_id, self.broadcast.current_seqno(group)
                )
        elif node_id in self.collectors:
            group = f"feed:{node_id}"
            self.broadcast.skip_to(group, node_id, self.broadcast.current_seqno(group))
            providers = self.collector_providers[node_id]
            for governor in self.governors.values():
                if not governor.book.is_registered(node_id):
                    governor.admit_collector(node_id, providers, bootstrap="median")

    def _end_of_round_audit(self, round_number: int) -> None:
        """Per-round invariant sweep (books, agreement, Theorem-1 bound)."""
        cfg = self.audit
        down = self._crashed | self._quarantined
        honest = [g for g in self.topology.governors if g not in down]
        if cfg.reputation_invariants:
            for gid in honest:
                self.auditors[gid].audit_book(
                    self.governors[gid].book, round_number
                )
        if len(honest) >= 2:
            self.harness_auditor.audit_agreement(
                [self.governors[gid].ledger for gid in honest], round_number
            )
        if cfg.theorem_guardrail and honest:
            measured = max(
                self.governors[gid].metrics.expected_loss for gid in honest
            )
            self.harness_auditor.audit_regret(
                measured,
                r=self.topology.r,
                beta=self.params.beta,
                round_number=round_number,
                s_min=cfg.s_min,
            )

    # -- fault injection & crash recovery ---------------------------------

    def install_faults(
        self, plan: FaultPlan, tamperer: object | None = None
    ) -> FaultInjector:
        """Run this engine under a seeded fault plan.

        Message faults intercept every send on the engine's network;
        node faults route through the engine's crash/recovery wiring so
        a "crash" is a real crash-stop (volatile state lost, churn
        applied), not just a link cut.  An optional ``tamperer``
        (:class:`repro.byzantine.tampering.MessageTamperer`) adds
        in-flight Byzantine corruption on top of the omission plan.
        Returns the installed injector (its ``stats`` record what
        actually fired).
        """
        injector = FaultInjector(
            plan=plan,
            on_crash=self.crash_node,
            on_recover=self.recover_node,
            tamperer=tamperer,
        )
        injector.install(self.network)
        self.injector = injector
        return injector

    @property
    def crashed_nodes(self) -> frozenset[str]:
        """Nodes currently crash-stopped."""
        return frozenset(self._crashed)

    def crash_node(self, node_id: str) -> None:
        """Crash-stop any node, with role-appropriate semantics."""
        if node_id in self.governors:
            self.crash_governor(node_id)
        elif node_id in self.collectors:
            self.crash_collector(node_id)
        else:
            self._crashed.add(node_id)
            self.network.partition(node_id)
            self.fault_log.append((self.sim.now, "crash", node_id, 0))
            self._m_crash_events.labels(event="crash").inc()

    def recover_node(self, node_id: str) -> None:
        """Recover a crashed node, with role-appropriate semantics."""
        if node_id in self.governors:
            self.recover_governor(node_id)
        elif node_id in self.collectors:
            self.recover_collector(node_id)
        elif node_id in self._crashed:
            self._crashed.discard(node_id)
            self.network.heal(node_id)
            self.fault_log.append((self.sim.now, "recover", node_id, 0))
            self._m_crash_events.labels(event="recover").inc()

    def crash_governor(self, gid: str) -> None:
        """Crash-stop a governor: connectivity cut, volatile state lost.

        The durable ledger replica survives; the in-memory report
        buffer, its armed Δ timers, and any screened-but-unpacked round
        records do not.  Idempotent.
        """
        if gid in self._crashed:
            return
        self._crashed.add(gid)
        self.network.partition(gid)
        self.governors[gid].crash_reset()
        self._round_records[gid].clear()
        self._receipt_buffers[gid].clear()
        self._timers_started = {k for k in self._timers_started if k[0] != gid}
        self.fault_log.append((self.sim.now, "crash", gid, 0))
        self._m_crash_events.labels(event="crash").inc()

    def recover_governor(self, gid: str) -> None:
        """Rejoin a crashed governor: ledger sync + broadcast catch-up.

        The governor heals its links, pulls every missed block from the
        published store (:func:`repro.ledger.sync.sync_replica` — the
        hash chain authenticates the catch-up), then advances its
        broadcast delivery cursors past the missed seqnos so buffered
        later messages flow again.  Uploads it missed entirely are
        covered by its peers, exactly as the paper's redundancy (m
        governors screen every transaction) intends.
        """
        if gid not in self._crashed:
            return
        self._crashed.discard(gid)
        self.network.heal(gid)
        synced = sync_replica(self.governors[gid].ledger, self.store)
        for group in ("uploads", "blocks"):
            self.broadcast.skip_to(group, gid, self.broadcast.current_seqno(group))
        self.fault_log.append((self.sim.now, "recover", gid, synced))
        self._m_crash_events.labels(event="recover").inc()

    def sync_from_peer(self, peer_store: BlockStore) -> int:
        """Pull the chain suffix this node lacks from a live peer.

        The second half of restart-from-disk: recovery replayed what the
        local segments held, and this fetches only the remainder from a
        peer's published store.  Each pulled block lands through
        ``publish`` (so a durable store persists it) and then through
        every governor replica's ``append`` — the hash chain, not the
        peer, authenticates the transfer.  Returns the number of blocks
        pulled.

        Raises:
            LedgerError: the peer's chain does not extend this node's
                verified tip (a divergent or corrupt peer).
        """
        pulled = 0
        while self.store.height < peer_store.height:
            block = peer_store.retrieve(self.store.height + 1)
            self.store.publish(block)
            for record in block.tx_list:
                self._packed_tx_ids.add(record.tx.tx_id)
            self._m_storage["recovered"].labels(source="peer").inc()
            pulled += 1
        if pulled:
            for gov in self.governors.values():
                sync_replica(gov.ledger, self.store)
            self._round = max(
                self._round, self.store.retrieve(self.store.height).round_number
            )
            if self.audit.enabled and len(self.governors) >= 2:
                self.harness_auditor.audit_agreement(
                    [gov.ledger for gov in self.governors.values()], self._round
                )
        return pulled

    def crash_collector(self, cid: str, retire: bool = True) -> None:
        """Crash-stop a collector; by default churn it out immediately.

        With ``retire=True`` every governor retires the collector's
        reputation vector and scrubs its buffered labels (the churn
        rules); late in-flight uploads from it are then dropped at
        ingestion.  Idempotent.
        """
        if cid in self._crashed:
            return
        self._crashed.add(cid)
        self.network.partition(cid)
        if retire:
            for governor in self.governors.values():
                if governor.book.is_registered(cid):
                    governor.drop_collector(cid)
            # A retired node's read cursor would otherwise leak forever
            # under churn soaks (same class as the PR-5 pending scrub).
            self.store.forget_reader(cid)
        self.fault_log.append((self.sim.now, "crash", cid, 0))
        self._m_crash_events.labels(event="crash").inc()

    def recover_collector(self, cid: str, bootstrap: str = "median") -> None:
        """Re-admit a recovered collector under the churn rules.

        Its feed cursor skips the transactions broadcast while it was
        down (they were labelled by its surviving peers), and every
        governor that retired it re-registers its reputation vector
        with the ``bootstrap`` weight (median of incumbents by default).
        """
        if cid not in self._crashed:
            return
        self._crashed.discard(cid)
        self.network.heal(cid)
        group = f"feed:{cid}"
        self.broadcast.skip_to(group, cid, self.broadcast.current_seqno(group))
        providers = self.collector_providers[cid]
        for governor in self.governors.values():
            if not governor.book.is_registered(cid):
                governor.admit_collector(cid, providers, bootstrap=bootstrap)
        self.fault_log.append((self.sim.now, "recover", cid, 0))
        self._m_crash_events.labels(event="recover").inc()

    # -- epoch migration (sharded deployments) -----------------------------

    def collector_masses(self) -> dict[str, float]:
        """Each live collector's reputation mass (mean over governors).

        A collector's mass at one governor is the sum of its per-provider
        weights; averaging across governors gives the shard-assignment
        signal (RepChain-style reputation-balanced sharding) without
        privileging any single governor's book.
        """
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        for governor in self.governors.values():
            book = governor.book
            for cid in book.collectors():
                mass = float(sum(book.vector(cid).provider_weights.values()))
                totals[cid] = totals.get(cid, 0.0) + mass
                counts[cid] = counts.get(cid, 0) + 1
        return {cid: totals[cid] / counts[cid] for cid in sorted(totals)}

    def release_collector(self, cid: str) -> tuple[tuple[str, ...], CollectorBehavior]:
        """Expel a collector for migration to another shard.

        The departure side of an epoch reshuffle: every governor retires
        the collector's reputation vector (the same churn rules a crash
        applies), its providers unlink it, and the agent leaves the
        engine.  Returns the provider slots it occupied plus its live
        behaviour object, which travel to the destination shard's
        :meth:`adopt_collector`.
        """
        if cid not in self.collectors:
            raise ConfigurationError(f"unknown collector {cid!r}")
        providers = self.collector_providers.pop(cid)
        for governor in self.governors.values():
            if governor.book.is_registered(cid):
                governor.drop_collector(cid)
        collector = self.collectors.pop(cid)
        for pid in providers:
            provider = self.providers[pid]
            provider.linked_collectors = tuple(
                c for c in provider.linked_collectors if c != cid
            )
        self._crashed.discard(cid)
        self.store.forget_reader(cid)
        return providers, collector.behavior

    def adopt_collector(
        self,
        cid: str,
        providers: Sequence[str],
        behavior: CollectorBehavior | None = None,
    ) -> None:
        """Admit a migrating collector into this shard.

        The arrival side of an epoch reshuffle: the collector inherits
        the given provider slots (typically vacated by an outbound
        migrant, keeping the feed degree regular), is wired into the
        network/broadcast fabric, and re-enters every governor's book
        through the **median-bootstrap** churn path — migration never
        imports reputation from the previous shard.
        """
        if cid in self.collectors:
            raise ConfigurationError(f"collector {cid!r} already on this shard")
        providers = tuple(providers)
        if self.im.is_enrolled(cid):
            key = self.im.record(cid).key
        else:
            key = self.im.enroll(cid, Role.COLLECTOR)
        self.collectors[cid] = Collector(
            collector_id=cid,
            key=key,
            linked_providers=providers,
            behavior=behavior if behavior is not None else HonestBehavior(),
            rng=np.random.default_rng(self._master.integers(2**63)),
        )
        for pid in providers:
            self.im.register_link(cid, pid)
            provider = self.providers[pid]
            if cid not in provider.linked_collectors:
                provider.linked_collectors = tuple(provider.linked_collectors) + (cid,)
        group = f"feed:{cid}"
        if not self.broadcast.has_group(group):
            self.broadcast.create_group(group, [cid])
            if self.resilience:
                self.broadcast.add_reliable_group(group)
        register = (
            self.channel.register if self.channel is not None else self.network.register
        )
        register(cid, self._collector_on_message(cid))
        self.broadcast.register_handler(group, cid, self._collector_on_feed(cid))
        # A returning collector must not replay the feed it missed.
        self.broadcast.skip_to(group, cid, self.broadcast.current_seqno(group))
        for governor in self.governors.values():
            if not governor.book.is_registered(cid):
                governor.admit_collector(cid, providers, bootstrap="median")
        self.collector_providers[cid] = providers

    def _live_leader(self, elected: str) -> str:
        """Deterministic leader failover: next eligible governor in order.

        Skips crashed *and* quarantined governors — a provably-Byzantine
        governor must never pack a block while contained.
        """
        down = self._crashed | self._quarantined
        if elected not in down:
            return elected
        order = list(self.topology.governors)
        start = order.index(elected)
        for offset in range(1, len(order) + 1):
            candidate = order[(start + offset) % len(order)]
            if candidate not in down:
                return candidate
        raise SimulationError(
            "all governors are crashed or quarantined; cannot pack a block"
        )

    # -- round execution ----------------------------------------------------

    def run_round(self, specs: Sequence[TxSpec]) -> NetworkedRoundResult:
        """Execute one full round in simulated time.

        Composed from the phase-split API (:meth:`begin_round` /
        :meth:`begin_argue` / :meth:`complete_round`) with this engine's
        own simulator driving the drains; single-engine behaviour is
        bit-identical to the pre-split monolithic implementation.
        """
        ctx = self.begin_round(specs)
        self.sim.run(until=ctx.drain_until)
        self.sim.run(until=self.begin_argue(ctx))
        return self.complete_round(ctx)

    def begin_round(self, specs: Sequence[TxSpec]) -> RoundContext:
        """Phases 1–3 of a round: broadcasts, forgeries, pack trigger.

        Schedules but does not drain — the caller advances the simulator
        to ``ctx.drain_until`` before :meth:`begin_argue`, which is what
        lets a :class:`~repro.sharding.ShardCoordinator` overlap all
        shards' rounds on one shared clock.
        """
        if len(specs) + len(self._reevaluated_queue) > self.params.b_limit:
            raise ConfigurationError("round exceeds b_limit")
        self._round += 1
        round_number = self._round
        t0 = self.sim.now
        cutoff = t0 + 2 * self.network.max_delay + self.params.delta + 0.001

        # Phase 1: providers broadcast at t0.
        round_txs: list = []
        for spec in specs:
            provider = self.providers[spec.provider]
            tx = provider.create_transaction(spec.payload, timestamp=t0)
            round_txs.append(tx)
            self.oracle.assign(tx, spec.is_valid)
            self.transcript.provider_broadcasts.add(tx.tx_id)
            if spec.is_valid and provider.active:
                self.transcript.honest_valid_tx.add(tx.tx_id)
            for cid in provider.linked_collectors:
                self.broadcast.broadcast(f"feed:{cid}", provider.provider_id, tx)
        # Pre-warm the IM's verification cache with this round's provider
        # signatures: when the drain below delivers the r-fold collector
        # fan-out and every governor re-checks each upload, they all hit
        # the cached verdict instead of redoing the HMAC.  Verification
        # consumes no randomness, so the drain is unaffected otherwise.
        if perf.ACTIVE.signature_cache:
            self.im.verify_batch(
                (tx.provider, tx.signed_message_bytes(), tx.provider_signature)
                for tx in round_txs
            )
        # Forgery opportunities: once per live collector per round.
        for collector in self.collectors.values():
            if collector.collector_id in self._crashed:
                continue
            forged = collector.maybe_forge(timestamp=t0)
            if forged is not None:
                self.broadcast.broadcast("uploads", collector.collector_id, forged)

        # Phase 3 trigger: leader packs at the cutoff.
        leader_id = self.election.run(self.stake, round_number)
        packed: dict[str, Block] = {}
        actual_leader: dict[str, str] = {}

        def pack_block() -> None:
            # Failover is resolved at pack time: the elected leader may
            # have crashed mid-round, in which case the next live
            # governor in the (deterministic, globally known) order
            # packs instead.
            live = self._live_leader(leader_id)
            actual_leader["id"] = live
            # The leader packs every record it has screened that is not
            # already on chain — including records carried over from
            # earlier rounds whose uploads arrived late (retransmits and
            # reordering can push the Δ timer past that round's cutoff;
            # destroying those records would silently drop the
            # transaction forever, defeating reliable delivery).
            fresh: list[TxRecord] = []
            seen: set[str] = set()
            for record in self._round_records[live]:
                tx_id = record.tx.tx_id
                if tx_id in self._packed_tx_ids or tx_id in seen:
                    continue
                seen.add(tx_id)
                fresh.append(record)
            budget = self.params.b_limit - len(self._reevaluated_queue)
            # Buffered cross-shard receipts commit ahead of fresh local
            # records: the remote leg of an already-home-committed
            # transaction must not starve behind new traffic (atomicity
            # latency), and an empty list on non-sharded engines keeps
            # this a no-op.
            receipts = self._receipt_records(live, max(budget, 0))
            fresh = fresh[: max(budget - len(receipts), 0)]
            records = list(self._reevaluated_queue.values()) + receipts + fresh
            self._reevaluated_queue.clear()
            # Pack against the canonical published tip.  A leader that
            # somehow lags (e.g. healed from a partition) must extend the
            # agreed chain, not its stale local copy; in a synchronous
            # deployment the two coincide.  ``tip_hash`` also covers a
            # store anchored at a compacted checkpoint base.
            prev_hash = self.store.tip_hash()
            block = Block(
                serial=self.store.height + 1,
                tx_list=tuple(records),
                prev_hash=prev_hash,
                proposer=live,
                round_number=round_number,
                b_limit=self.params.b_limit,
            )
            self.store.publish(block)
            for record in records:
                self._packed_tx_ids.add(record.tx.tx_id)
            packed["block"] = block
            self.broadcast.broadcast("blocks", live, block)

        self.sim.schedule_at(cutoff, pack_block, label=f"pack:{round_number}")
        # Drain target: block dissemination takes one more hop past the
        # pack cutoff.
        return RoundContext(
            round_number=round_number,
            t0=t0,
            cutoff=cutoff,
            drain_until=cutoff + self.network.max_delay + 0.001,
            specs_count=len(specs),
            elected=leader_id,
            packed=packed,
            actual_leader=actual_leader,
        )

    def begin_argue(self, ctx: RoundContext) -> float:
        """Phase 4: providers read the packed block and raise argues.

        Call after draining the simulator to ``ctx.drain_until``.
        Returns the sim time the caller must drain to before
        :meth:`complete_round` (one hop for the argue messages).
        """
        # Prune every governor's screened records down to the not-yet-
        # packed ones.  Fault-free this empties the lists exactly like
        # the old unconditional clear (everything screened this round
        # was packed this round); under faults it is what carries a
        # late-screened record to the next leader's pack.
        for gid in self.topology.governors:
            self._round_records[gid] = [
                r
                for r in self._round_records[gid]
                if r.tx.tx_id not in self._packed_tx_ids
            ]
        block = ctx.packed.get("block")
        if block is None:
            raise SimulationError("leader failed to pack a block")
        ctx.block = block
        ctx.leader = ctx.actual_leader["id"]

        ctx.argue_start = self.sim.now
        ctx.argues_before = self._argues_sent
        for provider in self.providers.values():
            fresh = self.store.next_for(provider.provider_id)
            while fresh is not None:
                for tx_id in provider.review_block(fresh, self.oracle):
                    self.transcript.argue_calls.add(tx_id)
                    self._argues_sent += 1
                    request = ArgueRequest(
                        provider=provider.provider_id, tx_id=tx_id, serial=fresh.serial
                    )
                    for gid in self.topology.governors:
                        self.network.send(provider.provider_id, gid, request)
                fresh = self.store.next_for(provider.provider_id)
        return self.sim.now + self.network.max_delay + 0.001

    def complete_round(self, ctx: RoundContext) -> NetworkedRoundResult:
        """Close a round: rewards, end-of-round audit, telemetry."""
        round_number = ctx.round_number
        block = ctx.block
        leader_id = ctx.leader
        rewards = distribute_rewards(self.params, self.governors[leader_id].book)
        for cid, amount in rewards.items():
            self.rewards_paid[cid] = self.rewards_paid.get(cid, 0.0) + amount

        if self.audit.enabled:
            self._end_of_round_audit(round_number)

        self._m_rounds.inc()
        self._m_tx_offered.inc(ctx.specs_count)
        self._m_engine_argues.inc(self._argues_sent - ctx.argues_before)
        self._m_block_size.observe(float(len(block.tx_list)))
        self.obs.record_span(
            "argue_phase", ctx.argue_start, self.sim.now, round=round_number
        )
        self.obs.record_span(
            "round", ctx.t0, self.sim.now, round=round_number, leader=leader_id
        )

        return NetworkedRoundResult(
            round_number=round_number,
            leader=leader_id,
            block=block,
            argues_sent=self._argues_sent - ctx.argues_before,
            rewards=rewards,
        )

    def drain_recovery(self, grace: float | None = None) -> None:
        """Let in-flight retransmits and gap repairs complete.

        Runs the simulator for ``grace`` more simulated seconds (default
        covers several repair round trips).  With resilience on, call
        before asserting the zero-stuck-gap invariant; a no-op otherwise.
        """
        if not self.resilience:
            return
        if grace is None:
            grace = 40 * self.network.max_delay
        drain_start = self.sim.now
        # Several scan/run cycles: a repair NACK (or its answer) can be
        # crossing a link the moment a crashed endpoint heals, and the
        # first NACKs for a gap target the primary sequencer, which may
        # itself be dead — failover only kicks in after repeated
        # attempts.  The exit test needs both a zero scan (no member
        # lags its group tip — catches invisible gaps with nothing
        # buffered behind them) and empty gap buffers.
        cycles = 6
        for _ in range(cycles):
            if (
                self.broadcast.force_repair_scan() == 0
                and self.broadcast.pending_gap_total() == 0
            ):
                break
            self.sim.run(until=self.sim.now + grace / cycles)
        self.obs.record_span("drain_recovery", drain_start, self.sim.now)

    def finalize(self, drain: bool = True) -> None:
        """Reveal all pending unchecked truths (closes the loss books).

        Under resilience, first drains outstanding recovery traffic so
        no repairable gap survives the run.  Pass ``drain=False`` when a
        shard driver has already walked the recovery drain through
        barrier-synchronized clock targets (:meth:`recovery_lagging`) —
        an engine-local drain here would advance the clock off-barrier.
        """
        if drain:
            self.drain_recovery()
        for governor in self.governors.values():
            for tx_id in list(governor._pending_unchecked):
                governor.reveal_truth(tx_id, self.oracle)

    def ledgers(self) -> list:
        """Every governor's replica, for property checks."""
        return [g.ledger for g in self.governors.values()]
