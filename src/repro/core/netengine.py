"""Packet-level protocol engine over the simulated synchronous network.

:class:`NetworkedProtocolEngine` executes the same protocol as
:class:`repro.core.protocol.ProtocolEngine`, but every interaction is a
real message through :class:`~repro.network.simnet.SyncNetwork` +
:class:`~repro.network.broadcast.AtomicBroadcast`, with the timing
structure of Algorithm 2:

* providers broadcast into per-collector *feed* groups at round start;
* collectors label on delivery and atomically broadcast uploads to the
  *uploads* group (all governors);
* each governor starts a Δ timer on the **first** report of a
  transaction (``starttime(tx, Δ)``) and screens it when the timer
  fires (``endtime(tx)``) — per-transaction, not per-batch;
* at the round cutoff the leader packs its screened records into a
  block and broadcasts it on the *blocks* group; every governor appends
  on delivery;
* providers then read the block from the store and send ``argue``
  messages point-to-point to every governor.

Message counts come from the network's real counters
(``engine.network.stats``), which lets tests cross-check the in-process
engine's analytic accounting against packet-level truth.

The engine is slower than the in-process one (every payload is a
scheduled event), so the big statistical experiments use
``ProtocolEngine``; this engine is the fidelity reference for
integration tests and the Δ-timing experiments.

**Fault tolerance** (``resilience=True``): the engine can run under a
seeded :class:`~repro.faults.FaultPlan` (``install_faults``) and still
uphold its safety properties.  Feed and upload traffic flows through an
ack/retransmit :class:`~repro.network.reliable.ReliableChannel`; the
block/upload broadcast groups repair sequence gaps via NACKs to a
sequencer endpoint with a deterministic backup
(:meth:`~repro.network.broadcast.AtomicBroadcast.enable_gap_repair`);
a crashed governor loses its volatile screening buffer, is retired from
leadership, and on recovery rejoins via
:func:`repro.ledger.sync.sync_replica` plus broadcast-cursor catch-up;
a crashed collector is retired from every governor's reputation book
and re-admitted under the membership churn rules (median bootstrap)
when it returns.  A crashed elected leader fails over deterministically
to the next live governor at pack time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro import perf
from repro.agents.behaviors import CollectorBehavior, HonestBehavior
from repro.agents.collector import Collector
from repro.agents.governor import Governor
from repro.agents.provider import Provider
from repro.consensus.pos import LeaderElection
from repro.consensus.stake import StakeLedger
from repro.core.params import ProtocolParams
from repro.core.rewards import distribute_rewards
from repro.crypto.identity import IdentityManager, Role
from repro.exceptions import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.properties import RunTranscript
from repro.ledger.store import BlockStore
from repro.ledger.sync import sync_replica
from repro.ledger.transaction import LabeledTransaction, SignedTransaction, TxRecord
from repro.ledger.validation import CountingOracle, GroundTruthOracle
from repro.network.broadcast import AtomicBroadcast
from repro.network.reliable import ReliableChannel
from repro.network.simnet import Message, Simulator, SyncNetwork
from repro.network.topology import Topology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.workloads.generator import TxSpec

__all__ = [
    "ArgueRequest",
    "NetworkedRoundResult",
    "NetworkedProtocolEngine",
    "SEQUENCER_PRIMARY",
    "SEQUENCER_BACKUP",
]

#: Dedicated network identities of the broadcast sequencer's repair
#: endpoints (the Identity Manager's ordering service and its replica).
#: Distinct from every p*/c*/g* topology id.
SEQUENCER_PRIMARY = "seq-primary"
SEQUENCER_BACKUP = "seq-backup"


@dataclass(frozen=True)
class ArgueRequest:
    """A provider's ``argue(tx, s)`` message to a governor."""

    provider: str
    tx_id: str
    serial: int
    kind: str = "argue"


@dataclass
class NetworkedRoundResult:
    """Outcome of one networked round."""

    round_number: int
    leader: str
    block: Block
    argues_sent: int
    rewards: Mapping[str, float]


class NetworkedProtocolEngine:
    """The protocol over real (simulated) packets.

    Args:
        topology: Node link structure.
        params: Protocol parameters; ``params.delta`` is the screening
            timer and must cover the upload-arrival spread, i.e. be at
            least ``2 * max_delay`` (checked at construction).
        behaviors: collector id -> behaviour (honest default).
        seed: Master seed for agents, network latencies, and draws.
        min_delay / max_delay: Channel latency bounds (the synchrony
            assumption's Δ-net).
        stake: governor id -> stake units (default 1 each).
        resilience: Enable the fault-tolerance machinery — reliable
            feed/upload delivery, broadcast gap repair with sequencer
            failover, and crash-recovery wiring.  Off by default: the
            fault-free engine's packet counts stay bit-identical to the
            pre-resilience implementation.
        obs: Optional :class:`~repro.obs.MetricsRegistry` threaded
            through every layer — network, broadcast, reliable channel,
            governors, reputation books — plus engine-level counters
            and sim-time spans (``round`` / ``pack`` / ``drain_recovery``).
            Same no-op convention as ``resilience``: absent or disabled,
            runs are bit-identical (see OBSERVABILITY.md).
    """

    def __init__(
        self,
        topology: Topology,
        params: ProtocolParams,
        behaviors: Mapping[str, CollectorBehavior] | None = None,
        seed: int = 0,
        min_delay: float = 0.005,
        max_delay: float = 0.05,
        stake: Mapping[str, int] | None = None,
        resilience: bool = False,
        obs: MetricsRegistry | None = None,
    ):
        if params.delta < 2 * max_delay:
            raise ConfigurationError(
                f"screening timer delta={params.delta} must be >= 2*max_delay="
                f"{2 * max_delay} to cover the report spread"
            )
        self.topology = topology
        self.params = params
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.im = IdentityManager(seed=seed, obs=self.obs)
        self.oracle = GroundTruthOracle()
        self.transcript = RunTranscript()
        self.store = BlockStore()
        self.sim = Simulator(seed=seed)
        self.obs.bind_clock(lambda: self.sim.now)
        self.network = SyncNetwork(
            self.sim, min_delay=min_delay, max_delay=max_delay, seed=seed + 1,
            obs=self.obs,
        )
        self.broadcast = AtomicBroadcast(self.network, obs=self.obs)
        self.resilience = resilience
        self.channel: ReliableChannel | None = (
            ReliableChannel(self.network, max_retries=5, obs=self.obs)
            if resilience
            else None
        )
        self._m_rounds = self.obs.counter(
            "engine_rounds_total", "Protocol rounds executed"
        )
        self._m_tx_offered = self.obs.counter(
            "engine_tx_offered_total", "Workload transactions offered to providers"
        )
        self._m_engine_argues = self.obs.counter(
            "engine_argues_total", "Argue messages raised by providers"
        )
        self._m_block_size = self.obs.histogram(
            "engine_block_size",
            "Records packed per block",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        self._m_crash_events = self.obs.counter(
            "engine_crash_events_total",
            "Node crash/recover transitions applied by the engine",
            labels=("event",),
        )
        self.injector: FaultInjector | None = None
        self._crashed: set[str] = set()
        # (sim time, "crash"/"recover", node id, blocks synced on recovery)
        self.fault_log: list[tuple[float, str, str, int]] = []
        self._master = np.random.default_rng(seed)
        self._round = 0
        self._reevaluated_queue: dict[str, TxRecord] = {}
        self._round_records: dict[str, list[TxRecord]] = {}
        # tx ids already packed into some block: the pack-time dedup
        # filter that lets late-screened records carry across rounds
        # without a later leader re-packing an on-chain transaction.
        self._packed_tx_ids: set[str] = set()
        self._argues_sent = 0
        self.rewards_paid: dict[str, float] = {}

        behaviors = dict(behaviors or {})
        unknown = set(behaviors) - set(topology.collectors)
        if unknown:
            raise ConfigurationError(f"behaviours for unknown collectors: {sorted(unknown)}")

        # -- enrolment and agents ---------------------------------------
        self.providers: dict[str, Provider] = {}
        for pid in topology.providers:
            key = self.im.enroll(pid, Role.PROVIDER)
            self.providers[pid] = Provider(
                provider_id=pid, key=key, linked_collectors=topology.collectors_of(pid)
            )
        self.collectors: dict[str, Collector] = {}
        for cid in topology.collectors:
            key = self.im.enroll(cid, Role.COLLECTOR)
            self.collectors[cid] = Collector(
                collector_id=cid,
                key=key,
                linked_providers=topology.providers_of(cid),
                behavior=behaviors.get(cid, HonestBehavior()),
                rng=np.random.default_rng(self._master.integers(2**63)),
            )
            for pid in topology.providers_of(cid):
                self.im.register_link(cid, pid)
        self.governors: dict[str, Governor] = {}
        for gid in topology.governors:
            key = self.im.enroll(gid, Role.GOVERNOR)
            gov = Governor(
                governor_id=gid,
                key=key,
                params=params,
                im=self.im,
                oracle=CountingOracle(inner=self.oracle),
                rng=np.random.default_rng(self._master.integers(2**63)),
                obs=self.obs,
            )
            gov.register_topology(topology)
            self.governors[gid] = gov
            self._round_records[gid] = []

        initial_stake = dict(stake) if stake else {g: 1 for g in topology.governors}
        self.stake = StakeLedger.from_balances(initial_stake)
        self.election = LeaderElection(im=self.im, governor_order=list(topology.governors))

        # -- network wiring ----------------------------------------------
        for cid in topology.collectors:
            self.broadcast.create_group(f"feed:{cid}", [cid])
        self.broadcast.create_group("uploads", list(topology.governors))
        self.broadcast.create_group("blocks", list(topology.governors))

        # With resilience on, nodes register behind the reliable channel
        # (plain traffic passes through it untouched) and the lossless
        # groups ride the ack/retransmit transport.
        register = self.channel.register if self.channel is not None else self.network.register
        for cid in topology.collectors:
            register(cid, self._collector_on_message(cid))
            self.broadcast.register_handler(
                f"feed:{cid}", cid, self._collector_on_feed(cid)
            )
        for gid in topology.governors:
            register(gid, self._governor_on_message(gid))
            self.broadcast.register_handler("uploads", gid, self._governor_on_upload(gid))
            self.broadcast.register_handler("blocks", gid, self._governor_on_block(gid))
        for pid in topology.providers:
            register(pid, lambda message: None)
        if self.resilience:
            reliable_groups = {f"feed:{cid}" for cid in topology.collectors}
            reliable_groups.add("uploads")
            self.broadcast.set_transport(self.channel, reliable_groups)
            self.broadcast.enable_gap_repair(
                primary=SEQUENCER_PRIMARY,
                backup=SEQUENCER_BACKUP,
                timeout=4 * max_delay,
            )

        # Per-governor Δ timers: (gid, tx_id) -> scheduled (once).
        self._timers_started: set[tuple[str, str]] = set()

    # -- handlers ---------------------------------------------------------

    def _collector_on_message(self, cid: str):
        def handle(message: Message) -> None:
            self.broadcast.on_message(cid, message)
        return handle

    def _collector_on_feed(self, cid: str):
        def handle(sender: str, tx: SignedTransaction) -> None:
            labeled = self.collectors[cid].process(tx, self.oracle)
            if labeled is not None:
                self.transcript.collector_uploads.add(tx.tx_id)
                self.broadcast.broadcast("uploads", cid, labeled)
        return handle

    def _governor_on_message(self, gid: str):
        def handle(message: Message) -> None:
            if self.broadcast.on_message(gid, message):
                return
            payload = message.payload
            if isinstance(payload, ArgueRequest):
                self._governor_on_argue(gid, payload)
        return handle

    def _governor_on_upload(self, gid: str):
        def handle(sender: str, upload: LabeledTransaction) -> None:
            governor = self.governors[gid]
            tx_id = upload.tx.tx_id
            fresh = not governor.has_buffered(tx_id)
            if governor.ingest_upload(upload) and fresh:
                # Algorithm 2's starttime(tx, Δ) — first report arms it.
                key = (gid, tx_id)
                if key not in self._timers_started:
                    self._timers_started.add(key)
                    self.sim.schedule_after(
                        self.params.delta,
                        lambda: self._governor_endtime(gid, tx_id),
                        label=f"endtime:{gid}:{tx_id[:8]}",
                    )
        return handle

    def _governor_endtime(self, gid: str, tx_id: str) -> None:
        """Algorithm 2's endtime(tx): screen when the Δ timer fires."""
        governor = self.governors[gid]
        if not governor.has_buffered(tx_id):
            return  # already screened (defensive; timers arm only once)
        record = governor.screen_single(tx_id)
        if record is not None:
            self._round_records[gid].append(record)

    def _governor_on_block(self, gid: str):
        def handle(sender: str, block: Block) -> None:
            self.governors[gid].ledger.append(block)
        return handle

    def _governor_on_argue(self, gid: str, request: ArgueRequest) -> None:
        record = self.governors[gid].handle_argue(request.tx_id)
        if record is not None:
            self._reevaluated_queue[request.tx_id] = record

    # -- fault injection & crash recovery ---------------------------------

    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Run this engine under a seeded fault plan.

        Message faults intercept every send on the engine's network;
        node faults route through the engine's crash/recovery wiring so
        a "crash" is a real crash-stop (volatile state lost, churn
        applied), not just a link cut.  Returns the installed injector
        (its ``stats`` record what actually fired).
        """
        injector = FaultInjector(
            plan=plan, on_crash=self.crash_node, on_recover=self.recover_node
        )
        injector.install(self.network)
        self.injector = injector
        return injector

    @property
    def crashed_nodes(self) -> frozenset[str]:
        """Nodes currently crash-stopped."""
        return frozenset(self._crashed)

    def crash_node(self, node_id: str) -> None:
        """Crash-stop any node, with role-appropriate semantics."""
        if node_id in self.governors:
            self.crash_governor(node_id)
        elif node_id in self.collectors:
            self.crash_collector(node_id)
        else:
            self._crashed.add(node_id)
            self.network.partition(node_id)
            self.fault_log.append((self.sim.now, "crash", node_id, 0))
            self._m_crash_events.labels(event="crash").inc()

    def recover_node(self, node_id: str) -> None:
        """Recover a crashed node, with role-appropriate semantics."""
        if node_id in self.governors:
            self.recover_governor(node_id)
        elif node_id in self.collectors:
            self.recover_collector(node_id)
        elif node_id in self._crashed:
            self._crashed.discard(node_id)
            self.network.heal(node_id)
            self.fault_log.append((self.sim.now, "recover", node_id, 0))
            self._m_crash_events.labels(event="recover").inc()

    def crash_governor(self, gid: str) -> None:
        """Crash-stop a governor: connectivity cut, volatile state lost.

        The durable ledger replica survives; the in-memory report
        buffer, its armed Δ timers, and any screened-but-unpacked round
        records do not.  Idempotent.
        """
        if gid in self._crashed:
            return
        self._crashed.add(gid)
        self.network.partition(gid)
        self.governors[gid].crash_reset()
        self._round_records[gid].clear()
        self._timers_started = {k for k in self._timers_started if k[0] != gid}
        self.fault_log.append((self.sim.now, "crash", gid, 0))
        self._m_crash_events.labels(event="crash").inc()

    def recover_governor(self, gid: str) -> None:
        """Rejoin a crashed governor: ledger sync + broadcast catch-up.

        The governor heals its links, pulls every missed block from the
        published store (:func:`repro.ledger.sync.sync_replica` — the
        hash chain authenticates the catch-up), then advances its
        broadcast delivery cursors past the missed seqnos so buffered
        later messages flow again.  Uploads it missed entirely are
        covered by its peers, exactly as the paper's redundancy (m
        governors screen every transaction) intends.
        """
        if gid not in self._crashed:
            return
        self._crashed.discard(gid)
        self.network.heal(gid)
        synced = sync_replica(self.governors[gid].ledger, self.store)
        for group in ("uploads", "blocks"):
            self.broadcast.skip_to(group, gid, self.broadcast.current_seqno(group))
        self.fault_log.append((self.sim.now, "recover", gid, synced))
        self._m_crash_events.labels(event="recover").inc()

    def crash_collector(self, cid: str, retire: bool = True) -> None:
        """Crash-stop a collector; by default churn it out immediately.

        With ``retire=True`` every governor retires the collector's
        reputation vector and scrubs its buffered labels (the churn
        rules); late in-flight uploads from it are then dropped at
        ingestion.  Idempotent.
        """
        if cid in self._crashed:
            return
        self._crashed.add(cid)
        self.network.partition(cid)
        if retire:
            for governor in self.governors.values():
                if governor.book.is_registered(cid):
                    governor.drop_collector(cid)
        self.fault_log.append((self.sim.now, "crash", cid, 0))
        self._m_crash_events.labels(event="crash").inc()

    def recover_collector(self, cid: str, bootstrap: str = "median") -> None:
        """Re-admit a recovered collector under the churn rules.

        Its feed cursor skips the transactions broadcast while it was
        down (they were labelled by its surviving peers), and every
        governor that retired it re-registers its reputation vector
        with the ``bootstrap`` weight (median of incumbents by default).
        """
        if cid not in self._crashed:
            return
        self._crashed.discard(cid)
        self.network.heal(cid)
        group = f"feed:{cid}"
        self.broadcast.skip_to(group, cid, self.broadcast.current_seqno(group))
        providers = self.topology.providers_of(cid)
        for governor in self.governors.values():
            if not governor.book.is_registered(cid):
                governor.admit_collector(cid, providers, bootstrap=bootstrap)
        self.fault_log.append((self.sim.now, "recover", cid, 0))
        self._m_crash_events.labels(event="recover").inc()

    def _live_leader(self, elected: str) -> str:
        """Deterministic leader failover: next live governor in order."""
        if elected not in self._crashed:
            return elected
        order = list(self.topology.governors)
        start = order.index(elected)
        for offset in range(1, len(order) + 1):
            candidate = order[(start + offset) % len(order)]
            if candidate not in self._crashed:
                return candidate
        raise SimulationError("all governors are crashed; cannot pack a block")

    # -- round execution ----------------------------------------------------

    def run_round(self, specs: Sequence[TxSpec]) -> NetworkedRoundResult:
        """Execute one full round in simulated time."""
        if len(specs) + len(self._reevaluated_queue) > self.params.b_limit:
            raise ConfigurationError("round exceeds b_limit")
        self._round += 1
        round_number = self._round
        t0 = self.sim.now
        cutoff = t0 + 2 * self.network.max_delay + self.params.delta + 0.001

        # Phase 1: providers broadcast at t0.
        round_txs: list = []
        for spec in specs:
            provider = self.providers[spec.provider]
            tx = provider.create_transaction(spec.payload, timestamp=t0)
            round_txs.append(tx)
            self.oracle.assign(tx, spec.is_valid)
            self.transcript.provider_broadcasts.add(tx.tx_id)
            if spec.is_valid and provider.active:
                self.transcript.honest_valid_tx.add(tx.tx_id)
            for cid in provider.linked_collectors:
                self.broadcast.broadcast(f"feed:{cid}", provider.provider_id, tx)
        # Pre-warm the IM's verification cache with this round's provider
        # signatures: when the drain below delivers the r-fold collector
        # fan-out and every governor re-checks each upload, they all hit
        # the cached verdict instead of redoing the HMAC.  Verification
        # consumes no randomness, so the drain is unaffected otherwise.
        if perf.ACTIVE.signature_cache:
            self.im.verify_batch(
                (tx.provider, tx.signed_message_bytes(), tx.provider_signature)
                for tx in round_txs
            )
        # Forgery opportunities: once per live collector per round.
        for collector in self.collectors.values():
            if collector.collector_id in self._crashed:
                continue
            forged = collector.maybe_forge(timestamp=t0)
            if forged is not None:
                self.broadcast.broadcast("uploads", collector.collector_id, forged)

        # Phase 3 trigger: leader packs at the cutoff.
        leader_id = self.election.run(self.stake, round_number)
        packed: dict[str, Block] = {}
        actual_leader: dict[str, str] = {}

        def pack_block() -> None:
            # Failover is resolved at pack time: the elected leader may
            # have crashed mid-round, in which case the next live
            # governor in the (deterministic, globally known) order
            # packs instead.
            live = self._live_leader(leader_id)
            actual_leader["id"] = live
            # The leader packs every record it has screened that is not
            # already on chain — including records carried over from
            # earlier rounds whose uploads arrived late (retransmits and
            # reordering can push the Δ timer past that round's cutoff;
            # destroying those records would silently drop the
            # transaction forever, defeating reliable delivery).
            fresh: list[TxRecord] = []
            seen: set[str] = set()
            for record in self._round_records[live]:
                tx_id = record.tx.tx_id
                if tx_id in self._packed_tx_ids or tx_id in seen:
                    continue
                seen.add(tx_id)
                fresh.append(record)
            budget = self.params.b_limit - len(self._reevaluated_queue)
            fresh = fresh[: max(budget, 0)]
            records = list(self._reevaluated_queue.values()) + fresh
            self._reevaluated_queue.clear()
            # Pack against the canonical published tip.  A leader that
            # somehow lags (e.g. healed from a partition) must extend the
            # agreed chain, not its stale local copy; in a synchronous
            # deployment the two coincide.
            prev_hash = (
                GENESIS_PREV_HASH
                if self.store.height == 0
                else self.store.retrieve(self.store.height).hash()
            )
            block = Block(
                serial=self.store.height + 1,
                tx_list=tuple(records),
                prev_hash=prev_hash,
                proposer=live,
                round_number=round_number,
                b_limit=self.params.b_limit,
            )
            self.store.publish(block)
            for record in records:
                self._packed_tx_ids.add(record.tx.tx_id)
            packed["block"] = block
            self.broadcast.broadcast("blocks", live, block)

        self.sim.schedule_at(cutoff, pack_block, label=f"pack:{round_number}")
        # Drain the round: block dissemination takes one more hop.
        self.sim.run(until=cutoff + self.network.max_delay + 0.001)
        # Prune every governor's screened records down to the not-yet-
        # packed ones.  Fault-free this empties the lists exactly like
        # the old unconditional clear (everything screened this round
        # was packed this round); under faults it is what carries a
        # late-screened record to the next leader's pack.
        for gid in self.topology.governors:
            self._round_records[gid] = [
                r
                for r in self._round_records[gid]
                if r.tx.tx_id not in self._packed_tx_ids
            ]
        block = packed.get("block")
        if block is None:
            raise SimulationError("leader failed to pack a block")
        leader_id = actual_leader["id"]

        # Phase 4: providers read the block and argue.
        argue_start = self.sim.now
        argues_before = self._argues_sent
        for provider in self.providers.values():
            fresh = self.store.next_for(provider.provider_id)
            while fresh is not None:
                for tx_id in provider.review_block(fresh, self.oracle):
                    self.transcript.argue_calls.add(tx_id)
                    self._argues_sent += 1
                    request = ArgueRequest(
                        provider=provider.provider_id, tx_id=tx_id, serial=fresh.serial
                    )
                    for gid in self.topology.governors:
                        self.network.send(provider.provider_id, gid, request)
                fresh = self.store.next_for(provider.provider_id)
        self.sim.run(until=self.sim.now + self.network.max_delay + 0.001)

        rewards = distribute_rewards(self.params, self.governors[leader_id].book)
        for cid, amount in rewards.items():
            self.rewards_paid[cid] = self.rewards_paid.get(cid, 0.0) + amount

        self._m_rounds.inc()
        self._m_tx_offered.inc(len(specs))
        self._m_engine_argues.inc(self._argues_sent - argues_before)
        self._m_block_size.observe(float(len(block.tx_list)))
        self.obs.record_span(
            "argue_phase", argue_start, self.sim.now, round=round_number
        )
        self.obs.record_span(
            "round", t0, self.sim.now, round=round_number, leader=leader_id
        )

        return NetworkedRoundResult(
            round_number=round_number,
            leader=leader_id,
            block=block,
            argues_sent=self._argues_sent - argues_before,
            rewards=rewards,
        )

    def drain_recovery(self, grace: float | None = None) -> None:
        """Let in-flight retransmits and gap repairs complete.

        Runs the simulator for ``grace`` more simulated seconds (default
        covers several repair round trips).  With resilience on, call
        before asserting the zero-stuck-gap invariant; a no-op otherwise.
        """
        if not self.resilience:
            return
        if grace is None:
            grace = 40 * self.network.max_delay
        drain_start = self.sim.now
        # Several scan/run cycles: a repair NACK (or its answer) can be
        # crossing a link the moment a crashed endpoint heals, and the
        # first NACKs for a gap target the primary sequencer, which may
        # itself be dead — failover only kicks in after repeated
        # attempts.  The exit test needs both a zero scan (no member
        # lags its group tip — catches invisible gaps with nothing
        # buffered behind them) and empty gap buffers.
        cycles = 6
        for _ in range(cycles):
            if (
                self.broadcast.force_repair_scan() == 0
                and self.broadcast.pending_gap_total() == 0
            ):
                break
            self.sim.run(until=self.sim.now + grace / cycles)
        self.obs.record_span("drain_recovery", drain_start, self.sim.now)

    def finalize(self) -> None:
        """Reveal all pending unchecked truths (closes the loss books).

        Under resilience, first drains outstanding recovery traffic so
        no repairable gap survives the run.
        """
        self.drain_recovery()
        for governor in self.governors.values():
            for tx_id in list(governor._pending_unchecked):
                governor.reveal_truth(tx_id, self.oracle)

    def ledgers(self) -> list:
        """Every governor's replica, for property checks."""
        return [g.ledger for g in self.governors.values()]
