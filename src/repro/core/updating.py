"""Reputation updating — Algorithm 3's three cases, applied to a book.

Case 1 (forge): an upload with an illegal signature costs the uploader
1 on ``w_forge``.

Case 2 (checked): every collector that reported the transaction gains
+1 on ``w_misreport`` if his label matched the governor's validation
result, and loses 1 otherwise.

Case 3 (unchecked truth revealed): every *linked* collector's
provider-entry is multiplied by 1 (labeled correctly), ``gamma_tx``
(labeled wrongly) or ``beta`` (stayed silent); ``gamma_tx`` is derived
from the realised loss ``L_tx = 2 W_wrong / (W_right + W_wrong)`` where
the weight sums are taken *at reveal time*, matching Algorithm 3 which
recomputes them from the current book.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.params import ProtocolParams, gamma_for
from repro.core.reputation import ReputationBook
from repro.ledger.transaction import Label

__all__ = [
    "RevealSummary",
    "apply_forge_update",
    "apply_checked_update",
    "compute_loss",
    "apply_reveal_update",
]


@dataclass(frozen=True)
class RevealSummary:
    """What a case-3 update did, for metrics and tests."""

    provider: str
    true_label: Label
    loss: float
    gamma: float
    outcomes: Mapping[str, str]
    w_right: float
    w_wrong: float


def apply_forge_update(book: ReputationBook, collector: str) -> None:
    """Case 1: penalise a forged upload."""
    book.record_forge(collector)


def apply_checked_update(
    book: ReputationBook,
    labels: Mapping[str, Label],
    true_label: Label,
) -> None:
    """Case 2: ±1 misreport updates for a transaction the governor checked.

    Args:
        book: The governor's reputation table (mutated).
        labels: collector -> label, for every collector that reported.
        true_label: The governor's validation result as a label.
    """
    for collector, label in labels.items():
        book.record_checked(collector, labeled_correctly=(label is true_label))


def compute_loss(
    book: ReputationBook,
    provider: str,
    labels: Mapping[str, Label],
    true_label: Label,
) -> tuple[float, float, float]:
    """``(L_tx, W_right, W_wrong)`` at the current book state.

    ``L_tx = 2 W_wrong / (W_right + W_wrong)``; when nobody reported
    (both sums zero) the loss is defined as 0 — there was no sampled
    label to mislead the governor.
    """
    w_right = sum(
        book.weight(c, provider) for c, lab in labels.items() if lab is true_label
    )
    w_wrong = sum(
        book.weight(c, provider) for c, lab in labels.items() if lab is not true_label
    )
    total = w_right + w_wrong
    loss = 0.0 if total == 0.0 else 2.0 * w_wrong / total
    return loss, w_right, w_wrong


def apply_reveal_update(
    params: ProtocolParams,
    book: ReputationBook,
    provider: str,
    linked_collectors: Sequence[str],
    labels: Mapping[str, Label],
    true_label: Label,
) -> RevealSummary:
    """Case 3: apply the multiplicative update for a revealed truth.

    Args:
        params: Supplies ``beta`` (and thus the gamma rule).
        book: The governor's reputation table (mutated).
        provider: The transaction's provider.
        linked_collectors: All collectors linked with the provider —
            silent ones are discounted by ``beta``.
        labels: collector -> label uploaded for the transaction.
        true_label: The revealed true status.

    Returns:
        A :class:`RevealSummary` with the realised loss and gamma.
    """
    loss, w_right, w_wrong = compute_loss(book, provider, labels, true_label)
    gamma = gamma_for(params.beta, loss)
    outcomes: dict[str, str] = {}
    for collector in linked_collectors:
        label = labels.get(collector)
        if label is None:
            outcomes[collector] = "missed"
        elif label is true_label:
            outcomes[collector] = "correct"
        else:
            outcomes[collector] = "wrong"
    book.apply_revealed_truth(provider, outcomes, beta=params.beta, gamma=gamma)
    return RevealSummary(
        provider=provider,
        true_label=true_label,
        loss=loss,
        gamma=gamma,
        outcomes=outcomes,
        w_right=w_right,
        w_wrong=w_wrong,
    )
