"""The paper's analytical bounds, as executable formulas (Section 4).

These functions compute the *right-hand sides* the experiments compare
measured losses against:

* :func:`rwm_bound` — the pre-optimisation Theorem-1 chain
  ``L_T <= 2 log(r) / (1 - beta) - 2 log(beta) / (1 - beta) * S_min``;
* :func:`theorem1_bound` — the tuned form ``S_min + 16 sqrt(log(r) T)``
  under ``beta = 1 - 4 sqrt(log(r)/T)``;
* :func:`hoeffding_tail` — Theorem 3's ``exp(-2 delta^2 N)``;
* :func:`theorem4_bound` — the end-to-end ``S + 16 sqrt(log(r) (f+delta) N)``;
* :func:`log_beta_linearisation_holds` — the proof's helper inequality
  ``-log(beta)/(1-beta) <= 17/2 - 8 beta`` on ``[0.1, 0.9]``.

All logarithms are natural, matching the analysis.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError

__all__ = [
    "rwm_bound",
    "theorem1_bound",
    "theorem1_constant",
    "hoeffding_tail",
    "theorem3_threshold",
    "theorem4_bound",
    "log_beta_linearisation_holds",
]


def _check_r(r: int) -> None:
    if r < 2:
        raise ConfigurationError(f"bounds need r >= 2 collectors, got {r}")


def rwm_bound(s_min: float, r: int, beta: float) -> float:
    """The generic weighted-majority bound for a fixed ``beta``.

    ``L_T <= 2/(1-beta) * log(r) - 2*log(beta)/(1-beta) * S_min``.
    """
    _check_r(r)
    if not 0.0 < beta < 1.0:
        raise ConfigurationError(f"beta must be in (0, 1), got {beta}")
    return (2.0 * math.log(r) - 2.0 * math.log(beta) * s_min) / (1.0 - beta)


def theorem1_constant() -> float:
    """The constant 16 in ``L_T <= S_min + 16 sqrt(log(r) T)``."""
    return 16.0


def theorem1_bound(s_min: float, horizon: int, r: int) -> float:
    """Theorem 1's RHS: ``S_min + 16 sqrt(log(r) * T)``.

    Valid whenever the tuned ``beta = 1 - 4 sqrt(log(r)/T)`` lands in
    [0.1, 0.9] (the paper notes T <= 4800 suffices at r = 8; large T is
    also fine since beta then approaches 1 from below until the clamp).
    """
    _check_r(r)
    if horizon < 1:
        raise ConfigurationError(f"horizon T must be >= 1, got {horizon}")
    return s_min + theorem1_constant() * math.sqrt(math.log(r) * horizon)


def hoeffding_tail(n: int, delta: float) -> float:
    """Theorem 3's tail probability ``exp(-2 delta^2 N)``."""
    if n < 1:
        raise ConfigurationError(f"N must be >= 1, got {n}")
    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    return math.exp(-2.0 * delta * delta * n)


def theorem3_threshold(n: int, f: float, delta: float) -> float:
    """The count threshold ``(f + delta) N`` from Theorem 3."""
    if not 0.0 < f < 1.0:
        raise ConfigurationError(f"f must be in (0, 1), got {f}")
    return (f + delta) * n


def theorem4_bound(s: float, n: int, f: float, delta: float, r: int) -> float:
    """Theorem 4's RHS: ``S + 16 sqrt(log(r) * (f + delta) * N)``.

    The unchecked-transaction count concentrates below ``(f + delta) N``
    (Theorem 3), and Theorem 1 applied to that many transactions gives
    the ``O(sqrt((f + delta) N))`` regret term.
    """
    _check_r(r)
    if n < 1:
        raise ConfigurationError(f"N must be >= 1, got {n}")
    effective_t = theorem3_threshold(n, f, delta)
    return s + theorem1_constant() * math.sqrt(math.log(r) * max(effective_t, 1.0))


def log_beta_linearisation_holds(beta: float) -> bool:
    """Check ``-log(beta)/(1-beta) <= 17/2 - 8*beta`` (proof helper).

    True on the proof's interval [0.1, 0.9]; exposed so property tests
    can confirm the paper's claimed inequality numerically.
    """
    if not 0.0 < beta < 1.0:
        raise ConfigurationError(f"beta must be in (0, 1), got {beta}")
    return -math.log(beta) / (1.0 - beta) <= 17.0 / 2.0 - 8.0 * beta + 1e-12
