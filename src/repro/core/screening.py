"""Transaction screening — Algorithm 2 as a pure decision procedure.

For one transaction ``tx`` from provider ``p_k``, a governor holding
reports from ``x <= r`` collectors:

1. computes ``W_{+1}``, ``W_{-1}`` (reputation mass behind each label)
   and ``W_0`` (mass of linked collectors that stayed silent);
2. draws one reporting collector with probability proportional to his
   reputation w.r.t. ``p_k``;
3. if the drawn label is **+1**, validates the transaction;
   if **-1**, validates with probability ``1 - f * Pr[chosen]`` —
   i.e. leaves it *unchecked* with probability ``f * Pr[chosen]``;
4. checked-valid transactions enter the block as valid, checked-invalid
   are discarded, unchecked ones enter as ``(tx, invalid, unchecked)``.

:func:`screen_transaction` performs 1-3 and returns a
:class:`ScreeningDecision`; :func:`decision_to_record` maps it to the
block record (or ``None`` for a discard).  Case-2 reputation updates for
checked transactions are applied by the caller via
:func:`repro.core.updating.apply_checked_update` so that screening stays
side-effect-free and unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.params import ProtocolParams
from repro.core.reputation import ReputationBook
from repro.exceptions import ProtocolViolationError
from repro.ledger.transaction import CheckStatus, Label, SignedTransaction, TxRecord

__all__ = ["ReportSet", "ScreeningDecision", "screen_transaction", "decision_to_record"]


@dataclass(frozen=True)
class ReportSet:
    """All reports a governor holds for one transaction after the Δ timer.

    Attributes:
        tx: The transaction.
        provider: ``p_k`` (must match ``tx.provider``).
        labels: collector id -> the label he uploaded.
        linked_collectors: the full set ``{c_{k,1}, ..., c_{k,r}}`` the
            provider is linked with (silent ones contribute to ``W_0``).
    """

    tx: SignedTransaction
    provider: str
    labels: Mapping[str, Label]
    linked_collectors: Sequence[str]

    def __post_init__(self) -> None:
        if self.provider != self.tx.provider:
            raise ProtocolViolationError(
                f"report set provider {self.provider!r} != tx provider {self.tx.provider!r}"
            )
        unknown = set(self.labels) - set(self.linked_collectors)
        if unknown:
            raise ProtocolViolationError(
                f"reports from collectors not linked with {self.provider!r}: {sorted(unknown)}"
            )
        if not self.labels:
            raise ProtocolViolationError("cannot screen a transaction with no reports")


@dataclass(frozen=True)
class ScreeningDecision:
    """Everything Algorithm 2 decided for one transaction."""

    tx: SignedTransaction
    provider: str
    chosen_collector: str
    chosen_label: Label
    chosen_probability: float
    checked: bool
    validation_result: bool | None
    w_plus: float
    w_minus: float
    w_silent: float
    labels: Mapping[str, Label]

    @property
    def unchecked(self) -> bool:
        """Whether the transaction enters the block unverified."""
        return not self.checked

    @property
    def reported_mass(self) -> float:
        """``W_{+1} + W_{-1}`` — the selection denominator."""
        return self.w_plus + self.w_minus


def screen_transaction(
    params: ProtocolParams,
    book: ReputationBook,
    reports: ReportSet,
    validate: Callable[[SignedTransaction], bool],
    rng: np.random.Generator,
) -> ScreeningDecision:
    """Run Algorithm 2's screening step for one transaction.

    Args:
        params: Protocol parameters (only ``f`` is used here).
        book: The governor's reputation table (read-only here).
        reports: The collected reports after the Δ window closed.
        validate: The governor's ``validate(tx)`` oracle; called at most
            once, and only when the decision is to check.
        rng: The governor's RNG (explicit for reproducibility).

    Returns:
        The full :class:`ScreeningDecision`.
    """
    provider = reports.provider
    reporters = sorted(reports.labels)  # deterministic ordering for the draw
    # Amortized-O(1) snapshot: weights, NumPy-order mass, and normalized
    # probabilities are all memoized per (provider, reporters) row and
    # reused until some underlying reputation entry changes.
    row = book.selection_row(provider, reporters)
    weights = row.weights
    mass = row.total
    if mass <= 0.0:
        raise ProtocolViolationError(
            f"non-positive reputation mass {mass} for provider {provider!r}"
        )
    w_plus = sum(
        w
        for c, w in zip(reporters, weights.tolist())
        if reports.labels[c] is Label.VALID
    )
    w_minus = mass - w_plus
    silent = [c for c in reports.linked_collectors if c not in reports.labels]
    w_silent = book.total_weight(provider, silent) if silent else 0.0

    probabilities = row.probabilities()
    drawn_index = int(rng.choice(len(reporters), p=probabilities))
    chosen = reporters[drawn_index]
    chosen_label = reports.labels[chosen]
    chosen_probability = float(probabilities[drawn_index])

    if chosen_label is Label.VALID:
        checked = True
    else:
        # Check with probability 1 - f * Pr[chosen]; i.e. skip with
        # probability f * Pr[chosen].
        skip_probability = params.f * chosen_probability
        checked = bool(rng.random() >= skip_probability)

    validation_result = bool(validate(reports.tx)) if checked else None
    return ScreeningDecision(
        tx=reports.tx,
        provider=provider,
        chosen_collector=chosen,
        chosen_label=chosen_label,
        chosen_probability=chosen_probability,
        checked=checked,
        validation_result=validation_result,
        w_plus=w_plus,
        w_minus=w_minus,
        w_silent=w_silent,
        labels=dict(reports.labels),
    )


def decision_to_record(decision: ScreeningDecision) -> TxRecord | None:
    """Map a screening decision to its block record.

    Returns:
        * ``TxRecord(valid, CHECKED)`` for checked-valid transactions;
        * ``None`` for checked-invalid ones (discarded, per §3.4.1);
        * ``TxRecord(invalid, UNCHECKED)`` for unchecked ones — the
          governor provisionally trusts the sampled -1 label.
    """
    if decision.checked:
        assert decision.validation_result is not None
        if decision.validation_result:
            return TxRecord(tx=decision.tx, label=Label.VALID, status=CheckStatus.CHECKED)
        return None
    return TxRecord(tx=decision.tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
