"""Collector revenue — the reputation-linked incentive (Section 3.4.3).

When ``g_j`` leads a round, collector ``c_i``'s share of the block's
profit pool is proportional to

    score(c_i) = prod_u w_{j,i,k_u} * mu ** w_misreport * nu ** w_forge

over the providers ``k_u`` the collector oversees, with ``mu, nu > 1``.
Every component is decreasing in misbehaviour: mislabeling/concealing
shrinks the provider entries, wrong labels on checked transactions drive
``w_misreport`` negative, forging drives ``w_forge`` negative — so the
product collapses for unreliable collectors, which is the incentive
claim experiment E6 measures.

Scores are computed in log-space: the product of hundreds of weights in
(0, 1] underflows double precision long before the *ratios* between
collectors become meaningless, and only ratios matter for a
proportional split.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.core.params import ProtocolParams
from repro.core.reputation import ReputationBook
from repro.exceptions import ConfigurationError

__all__ = [
    "log_score",
    "reputation_score",
    "distribute_rewards",
    "pool_from_block",
]


def log_score(params: ProtocolParams, book: ReputationBook, collector: str) -> float:
    """``log score(c_i)`` under governor ``book.governor``'s view.

    Returns ``-inf`` only if a provider weight hit the representational
    floor, which in practice means "no share".
    """
    vector = book.vector(collector)
    total = 0.0
    for weight in vector.provider_weights.values():
        total += math.log(weight)
    total += vector.misreport * math.log(params.mu)
    total += vector.forge * math.log(params.nu)
    return total


def reputation_score(
    params: ProtocolParams, book: ReputationBook, collector: str
) -> float:
    """The raw (non-normalised) score; may underflow to 0.0 for pariahs."""
    return math.exp(log_score(params, book, collector))


def distribute_rewards(
    params: ProtocolParams,
    book: ReputationBook,
    pool: float | None = None,
) -> Mapping[str, float]:
    """Split a profit pool among all collectors proportionally to score.

    Args:
        params: Supplies ``mu``, ``nu`` and the default pool size.
        book: The *leading* governor's reputation table.
        pool: Profit to distribute; defaults to
            ``params.reward_pool_per_block``.

    Returns:
        collector id -> payout; payouts sum to ``pool`` (up to float
        rounding).  An empty book yields an empty mapping.

    Raises:
        ConfigurationError: on a negative pool.
    """
    amount = params.reward_pool_per_block if pool is None else pool
    if amount < 0:
        raise ConfigurationError(f"reward pool cannot be negative, got {amount}")
    collectors = sorted(book.collectors())
    if not collectors:
        return {}
    logs = np.array([log_score(params, book, c) for c in collectors], dtype=float)
    # Softmax-style normalisation in log space: subtract the max so the
    # best collector's score is exp(0) = 1 and ratios are preserved.
    finite = logs[np.isfinite(logs)]
    if finite.size == 0:
        # Everyone is at the floor; split equally (degenerate but total-preserving).
        share = amount / len(collectors)
        return {c: share for c in collectors}
    shifted = np.exp(logs - finite.max())
    total = float(shifted.sum())
    return {
        c: amount * float(w) / total for c, w in zip(collectors, shifted, strict=True)
    }


def pool_from_block(
    block,
    fee_per_valid_tx: float,
    collector_share: float = 0.5,
) -> float:
    """The paper's profit model: a constant proportion of executed value.

    Section 3.4.3: *"A constant proportion of the profit gained by
    executing these transactions will be allotted to the collectors"*.
    With a per-transaction execution fee, the collectors' pool for a
    block is ``collector_share * fee * #executed`` where executed =
    records whose final label is valid (unchecked-invalid records are
    not executed until re-evaluated).

    Args:
        block: The committed :class:`~repro.ledger.block.Block`.
        fee_per_valid_tx: Profit per executed transaction.
        collector_share: The constant proportion in (0, 1].

    Raises:
        ConfigurationError: on a non-positive fee or share outside (0, 1].
    """
    from repro.ledger.transaction import Label

    if fee_per_valid_tx <= 0:
        raise ConfigurationError(f"fee must be positive, got {fee_per_valid_tx}")
    if not 0.0 < collector_share <= 1.0:
        raise ConfigurationError(
            f"collector share must be in (0, 1], got {collector_share}"
        )
    executed = sum(1 for rec in block.tx_list if rec.label is Label.VALID)
    return collector_share * fee_per_valid_tx * executed
