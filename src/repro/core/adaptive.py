"""Adaptive efficiency control — an extension beyond the paper.

The paper leaves ``f`` as a static tunable: *"The larger f is, the
faster the execution of the protocol would be"* at the price of
unchecked-transaction risk.  Operationally one wants the *dual* knob —
"keep the mistake rate under epsilon and make f as large as that
allows".  :class:`AdaptiveF` implements that controller with an
AIMD (additive-increase, multiplicative-decrease) rule over the
observed outcomes of revealed unchecked transactions:

* every revealed truth that *confirms* the unchecked record is evidence
  the mechanism is sampling reliable collectors -> additively raise f;
* every revealed mistake multiplicatively cuts f.

AIMD converges to an f whose long-run mistake rate tracks the target,
and reacts within O(1/decrease) reveals to an adversarial phase change
(e.g. sleepers defecting) — the property the ablation bench measures.

This module is self-contained: the controller consumes reveal outcomes
and produces the f to use next; both engines accept per-round parameter
updates by swapping ``params``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError

__all__ = ["AdaptiveF"]


@dataclass
class AdaptiveF:
    """AIMD controller for the efficiency parameter ``f``.

    Args:
        target_mistake_rate: Acceptable long-run mistakes per unchecked
            reveal (epsilon).
        initial_f: Starting point.
        increase: Additive step applied per clean reveal, scaled by the
            target (a clean reveal is weak evidence; a mistake strong).
        decrease: Multiplicative cut applied per mistake.
        f_min / f_max: Clamps — f must stay inside (0, 1) for the
            protocol, and operators usually want a floor so the system
            never degenerates to check-everything.
        rate_decay: EWMA factor for the mistake-rate estimate.  A
            *recency-weighted* estimate (rather than the all-time
            average) is what lets the controller recover after a bad
            phase: once the reputation mechanism has demoted the
            defectors and mistakes stop, the estimate decays back under
            the target and f climbs again.
    """

    target_mistake_rate: float = 0.02
    initial_f: float = 0.5
    increase: float = 0.01
    decrease: float = 0.5
    f_min: float = 0.05
    f_max: float = 0.95
    rate_decay: float = 0.99
    reveals: int = field(default=0, repr=False)
    mistakes: int = field(default=0, repr=False)
    _f: float = field(init=False, repr=False)
    _rate: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_mistake_rate < 1.0:
            raise ConfigurationError("target_mistake_rate must be in (0, 1)")
        if not 0.0 < self.f_min < self.f_max < 1.0:
            raise ConfigurationError("need 0 < f_min < f_max < 1")
        if not self.f_min <= self.initial_f <= self.f_max:
            raise ConfigurationError("initial_f must lie within [f_min, f_max]")
        if self.increase <= 0:
            raise ConfigurationError("increase step must be positive")
        if not 0.0 < self.decrease < 1.0:
            raise ConfigurationError("decrease factor must be in (0, 1)")
        if not 0.0 < self.rate_decay < 1.0:
            raise ConfigurationError("rate_decay must be in (0, 1)")
        self._f = self.initial_f
        self._rate = 0.0

    @property
    def f(self) -> float:
        """The controller's current efficiency parameter."""
        return self._f

    @property
    def observed_mistake_rate(self) -> float:
        """All-time mistakes per reveal (reporting only; control uses EWMA)."""
        return self.mistakes / self.reveals if self.reveals else 0.0

    @property
    def recent_mistake_rate(self) -> float:
        """The EWMA estimate the control law acts on."""
        return self._rate

    def observe_reveal(self, was_mistake: bool) -> float:
        """Feed one revealed unchecked-transaction outcome; returns new f.

        AIMD: clean reveal -> ``f += increase * headroom * (1 - f)``
        (damped near the ceiling and near the target); mistake ->
        ``f *= decrease``.
        """
        self.reveals += 1
        self._rate = self.rate_decay * self._rate + (
            (1.0 - self.rate_decay) if was_mistake else 0.0
        )
        if was_mistake:
            self.mistakes += 1
            self._f = max(self._f * self.decrease, self.f_min)
        else:
            # Scale the additive step by how far below target the recent
            # rate sits, so the controller settles instead of oscillating.
            headroom = 1.0 - self._rate / self.target_mistake_rate
            step = self.increase * max(headroom, 0.0)
            self._f = min(self._f + step * (1.0 - self._f), self.f_max)
        return self._f

    def apply_to(self, params: ProtocolParams) -> ProtocolParams:
        """A copy of ``params`` carrying the controller's current f."""
        from dataclasses import replace

        return replace(params, f=self._f)
