"""The full protocol engine: collecting, uploading, processing, arguing.

:class:`ProtocolEngine` wires the whole hierarchy together — Identity
Manager, topology, provider/collector/governor agents, PoS leader
election, block store, reward distribution, optional stake-transform
consensus — and executes rounds:

1. **Collecting** — workload transactions are signed by their providers
   and delivered to the providers' ``r`` linked collectors.
2. **Uploading** — each collector labels per his behaviour (possibly
   concealing or forging) and uploads to every governor.
3. **Processing** — every governor verifies uploads and screens each
   transaction (its *own* draw, updating its *local* reputations); the
   round leader — elected via the VRF/PoS scheme — packs *his* records
   (plus any transactions re-validated after argues) into the block,
   which every governor appends (Agreement by construction, as the
   paper assumes governors do not subvert the chain).
4. **Arguing** — active providers scan the new block and argue about
   valid-but-unchecked-invalid records; admitted argues are re-validated,
   trigger case-3 reputation updates on every governor, and the records
   enter the *next* block.

Message accounting in this in-process engine is analytic: each phase
adds exactly the messages the real exchange would send, so the E7
complexity bench measures the paper's ``O(b_limit * m)`` ordinary-block
and ``O(m^2)`` stake-transform terms without a packet-level run
(the packet-level path is exercised separately by the
:mod:`repro.network`-backed integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.agents.behaviors import CollectorBehavior, HonestBehavior
from repro.agents.collector import Collector
from repro.agents.governor import Governor
from repro.agents.provider import Provider
from repro.audit import config as audit_config
from repro.consensus.pos import LeaderElection
from repro.consensus.stake import StakeLedger, StakeTransfer
from repro.consensus.messages import NewStateProposal
from repro.consensus.stake_consensus import StakeConsensusRound, make_proposal
from repro.core.params import ProtocolParams
from repro.core.rewards import distribute_rewards
from repro.crypto.identity import IdentityManager, Role
from repro.crypto.signatures import sign
from repro.exceptions import ConfigurationError, LeaderMisbehaviourError
from repro.ledger.block import Block
from repro.ledger.properties import RunTranscript
from repro.ledger.store import BlockStore
from repro.ledger.transaction import LabeledTransaction, TxRecord
from repro.ledger.validation import CountingOracle, GroundTruthOracle
from repro.network.topology import Topology
from repro.network.visibility import VisibilityMap
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.workloads.generator import TxSpec

__all__ = ["RoundResult", "EngineMetrics", "ProtocolEngine"]


@dataclass
class RoundResult:
    """Summary of one executed round.

    ``uploads`` carries the round's verified collector uploads (the
    labeled transactions), so applications can read the per-collector
    labels — e.g. the car-sharing dispatcher reads driver willingness
    from them.
    """

    round_number: int
    leader: str
    block: Block
    transactions_offered: int
    argues_admitted: int
    rewards: Mapping[str, float]
    uploads: tuple[LabeledTransaction, ...] = ()
    stake_messages: int = 0


@dataclass
class EngineMetrics:
    """Run-level counters across all rounds."""

    rounds: int = 0
    transactions_offered: int = 0
    forged_uploads: int = 0
    provider_messages: int = 0
    collector_messages: int = 0
    governor_messages: int = 0
    stake_messages: int = 0
    argues_total: int = 0
    rewards_paid: dict[str, float] = field(default_factory=dict)


class ProtocolEngine:
    """In-process execution of the full three-tier protocol.

    Args:
        topology: The provider/collector/governor link structure.
        params: Protocol parameters.
        behaviors: collector id -> behaviour; missing ids are honest.
        seed: Master seed; all agent RNGs derive from it.
        stake: governor id -> stake units (default: 1 each).
        visibility: Partial governor visibility (paper §3.1's "partial
            information" adjustment); None = the default full view.
            Must satisfy the coverage constraint (validated).
        abusive_providers: provider id -> spurious-argue rate; these
            providers also contest correctly-recorded invalid
            transactions, burning one governor validation per argue
            (bounded griefing; the record never flips).
        leader_rotation: When True, bypass the VRF election and rotate
            leaders round-robin (useful to de-noise non-consensus
            experiments); the default is the paper's PoS election.
        obs: Optional :class:`~repro.obs.MetricsRegistry`; when given,
            the engine, its governors, and their reputation books feed
            the ``engine_* / gov_* / rep_*`` metric families (see
            OBSERVABILITY.md).  Observability never touches RNG or
            control flow, so seeded runs are bit-identical with it on,
            off, or absent.
    """

    def __init__(
        self,
        topology: Topology,
        params: ProtocolParams,
        behaviors: Mapping[str, CollectorBehavior] | None = None,
        seed: int = 0,
        stake: Mapping[str, int] | None = None,
        leader_rotation: bool = False,
        visibility: VisibilityMap | None = None,
        abusive_providers: Mapping[str, float] | None = None,
        obs: MetricsRegistry | None = None,
        sparse_reputation: bool = False,
    ):
        self.topology = topology
        self.params = params
        self.seed = seed
        self.leader_rotation = leader_rotation
        self.sparse_reputation = sparse_reputation
        self.visibility = visibility
        if sparse_reputation and visibility is not None:
            raise ConfigurationError(
                "sparse_reputation does not support partial visibility"
            )
        if visibility is not None:
            visibility.validate(topology)
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.im = IdentityManager(seed=seed, obs=self.obs)
        self.oracle = GroundTruthOracle()
        self.transcript = RunTranscript()
        self.store = BlockStore()
        self.metrics = EngineMetrics()
        # Harness-level AuditReport, filled by finalize() when the
        # safety auditor is enabled (repro.audit.config).
        self.audit_report = None
        self._round = 0
        self._reevaluated_queue: dict[str, TxRecord] = {}
        self._master = np.random.default_rng(seed)
        self._m_rounds = self.obs.counter(
            "engine_rounds_total", "Protocol rounds executed"
        )
        self._m_tx_offered = self.obs.counter(
            "engine_tx_offered_total", "Workload transactions offered to providers"
        )
        self._m_engine_argues = self.obs.counter(
            "engine_argues_total", "Argue messages raised by providers"
        )
        self._m_block_size = self.obs.histogram(
            "engine_block_size",
            "Records packed per block",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )

        behaviors = dict(behaviors or {})
        unknown = set(behaviors) - set(topology.collectors)
        if unknown:
            raise ConfigurationError(
                f"behaviours supplied for unknown collectors: {sorted(unknown)}"
            )

        abusive = dict(abusive_providers or {})
        unknown_prov = set(abusive) - set(topology.providers)
        if unknown_prov:
            raise ConfigurationError(
                f"abuse rates for unknown providers: {sorted(unknown_prov)}"
            )
        self.providers: dict[str, Provider] = {}
        for pid in topology.providers:
            key = self.im.enroll(pid, Role.PROVIDER)
            rate = abusive.get(pid, 0.0)
            self.providers[pid] = Provider(
                provider_id=pid,
                key=key,
                linked_collectors=topology.collectors_of(pid),
                argue_abuse_rate=rate,
                abuse_rng=(
                    np.random.default_rng(self._master.integers(2**63))
                    if rate > 0.0
                    else None
                ),
            )
        self.collectors: dict[str, Collector] = {}
        for cid in topology.collectors:
            key = self.im.enroll(cid, Role.COLLECTOR)
            self.collectors[cid] = Collector(
                collector_id=cid,
                key=key,
                linked_providers=topology.providers_of(cid),
                behavior=behaviors.get(cid, HonestBehavior()),
                rng=np.random.default_rng(self._master.integers(2**63)),
            )
            for pid in topology.providers_of(cid):
                self.im.register_link(cid, pid)
        self.governors: dict[str, Governor] = {}
        for gid in topology.governors:
            key = self.im.enroll(gid, Role.GOVERNOR)
            gov = Governor(
                governor_id=gid,
                key=key,
                params=params,
                im=self.im,
                oracle=CountingOracle(inner=self.oracle),
                rng=np.random.default_rng(self._master.integers(2**63)),
                obs=self.obs,
            )
            if sparse_reputation:
                # Value-for-value the same registration (default rows at
                # initial reputation, identical member order), so seeded
                # runs are bit-identical to the dense path — locked by
                # tests/test_streaming.py's equivalence suite.
                gov.register_topology_sparse(topology)
            else:
                gov.register_topology(
                    topology,
                    None if visibility is None else visibility.collectors_for(gid),
                )
            self.governors[gid] = gov

        initial_stake = dict(stake) if stake else {g: 1 for g in topology.governors}
        unknown_gov = set(initial_stake) - set(topology.governors)
        if unknown_gov:
            raise ConfigurationError(f"stake for unknown governors: {sorted(unknown_gov)}")
        self.stake = StakeLedger.from_balances(initial_stake)
        self.election = LeaderElection(
            im=self.im, governor_order=list(topology.governors)
        )
        self._stake_nonce = 0
        self._byzantine: set[str] = set()
        self._expelled: set[str] = set()
        self.expulsions: list[tuple[str, str]] = []

    # -- round execution -------------------------------------------------

    def run_round(self, specs: Sequence[TxSpec]) -> RoundResult:
        """Execute one full round over the given workload batch."""
        if len(specs) + len(self._reevaluated_queue) > self.params.b_limit:
            raise ConfigurationError(
                f"round batch of {len(specs)} plus {len(self._reevaluated_queue)} "
                f"re-evaluated records exceeds b_limit={self.params.b_limit}"
            )
        self._round += 1
        round_number = self._round
        m = self.topology.m

        # Phase 1: collecting.
        timestamp = float(round_number)
        deliveries: list[tuple[str, object]] = []  # (collector, tx)
        for spec in specs:
            provider = self.providers[spec.provider]
            tx = provider.create_transaction(spec.payload, timestamp)
            self.oracle.assign(tx, spec.is_valid)
            self.transcript.provider_broadcasts.add(tx.tx_id)
            if spec.is_valid and provider.active:
                self.transcript.honest_valid_tx.add(tx.tx_id)
            for cid in provider.linked_collectors:
                deliveries.append((cid, tx))
            self.metrics.provider_messages += len(provider.linked_collectors)

        # Phase 2: uploading.
        uploads: list[LabeledTransaction] = []
        for cid, tx in deliveries:
            collector = self.collectors[cid]
            for labeled in collector.process_all(tx, self.oracle):
                uploads.append(labeled)
                self.transcript.collector_uploads.add(tx.tx_id)
        # Forgery opportunities: once per collector per round.
        for collector in self.collectors.values():
            forged = collector.maybe_forge(timestamp)
            if forged is not None:
                uploads.append(forged)
                self.metrics.forged_uploads += 1
        self.metrics.collector_messages += len(uploads) * m

        # Phase 3: processing — every governor screens independently.
        leader_id = self._elect_leader(round_number)
        leader = self.governors[leader_id]
        leader_records: list[TxRecord] = []
        for gid, governor in self.governors.items():
            for upload in uploads:
                if self.visibility is not None and not self.visibility.sees(
                    gid, upload.collector
                ):
                    continue
                governor.ingest_upload(upload)
            records = governor.screen_pending()
            if gid == leader_id:
                leader_records = records
        block_records = list(self._reevaluated_queue.values()) + leader_records
        self._reevaluated_queue.clear()
        block = Block(
            serial=self.store.height + 1,
            tx_list=tuple(block_records),
            prev_hash=leader.ledger.tip_hash(),
            proposer=leader_id,
            round_number=round_number,
            b_limit=self.params.b_limit,
        )
        for governor in self.governors.values():
            governor.ledger.append(block)
        self.store.publish(block)
        # Leader broadcasts the block to the other m-1 governors; the
        # paper's O(b_limit * m) term counts the payload size times m.
        self.metrics.governor_messages += m - 1

        # Phase 4: arguing.
        argues_admitted = 0
        for provider in self.providers.values():
            fresh = self.store.next_for(provider.provider_id)
            while fresh is not None:
                for tx_id in provider.review_block(fresh, self.oracle):
                    self.transcript.argue_calls.add(tx_id)
                    self.metrics.argues_total += 1
                    self._m_engine_argues.inc()
                    admitted_record: TxRecord | None = None
                    for governor in self.governors.values():
                        record = governor.handle_argue(tx_id)
                        if record is not None:
                            admitted_record = record
                    if admitted_record is not None:
                        argues_admitted += 1
                        self._reevaluated_queue[tx_id] = admitted_record
                fresh = self.store.next_for(provider.provider_id)

        # Rewards from the leader's reputation view.
        rewards = distribute_rewards(self.params, leader.book)
        for cid, amount in rewards.items():
            self.metrics.rewards_paid[cid] = (
                self.metrics.rewards_paid.get(cid, 0.0) + amount
            )

        self.metrics.rounds += 1
        self.metrics.transactions_offered += len(specs)
        self._m_rounds.inc()
        self._m_tx_offered.inc(len(specs))
        self._m_block_size.observe(float(len(block_records)))

        return RoundResult(
            round_number=round_number,
            leader=leader_id,
            block=block,
            transactions_offered=len(specs),
            argues_admitted=argues_admitted,
            rewards=rewards,
            uploads=tuple(uploads),
        )

    def _elect_leader(self, round_number: int) -> str:
        eligible = [
            g for g in self.topology.governors if g not in self._expelled
        ]
        if self.leader_rotation:
            return eligible[(round_number - 1) % len(eligible)]
        # VRF announcements: every staked eligible governor broadcasts
        # y_j outputs to the other m-1 governors.
        staked = [g for g in eligible if self.stake.balance(g) > 0]
        self.metrics.governor_messages += len(staked) * (self.topology.m - 1)
        if not staked:
            # All stake sits with expelled governors: fall back to
            # round-robin among the eligible so the chain stays live.
            return eligible[(round_number - 1) % len(eligible)]
        from repro.consensus.stake import StakeLedger

        filtered = StakeLedger.from_balances(
            {g: self.stake.balance(g) for g in staked}
        )
        election = LeaderElection(im=self.im, governor_order=eligible)
        return election.run(filtered, round_number)

    # -- stake transfers ---------------------------------------------------

    def transfer_stake(self, sender: str, receiver: str, amount: int) -> int:
        """Run a stake transfer through the 3-step consensus.

        A leader marked Byzantine (see :meth:`mark_byzantine_governor`)
        proposes a tampered NEW_STATE; honest governors broadcast expel
        evidence, the leader is removed from future elections, and the
        round re-runs under a new leader — the expulsion flow the paper
        adopts from CycLedger.

        Returns the number of governor messages the exchange took, which
        the E7 bench accumulates against the O(m^2) claim.
        """
        key = self.im.record(sender).key
        message = ("stake-transfer", sender, receiver, amount, self._stake_nonce)
        transfer = StakeTransfer(
            sender=sender,
            receiver=receiver,
            amount=amount,
            nonce=self._stake_nonce,
            signature=sign(key, message),
        )
        self._stake_nonce += 1
        total_messages = 0
        for _attempt in range(self.topology.m):
            leader = self._elect_leader(self._round + 1)
            consensus = StakeConsensusRound(
                im=self.im, governors=list(self.topology.governors)
            )
            tampered = None
            if leader in self._byzantine:
                honest = make_proposal(
                    self.im.record(leader).key, 0, self.stake, [transfer]
                )
                bad_state = dict(honest.new_state)
                bad_state[leader] = bad_state.get(leader, 0) + amount
                tampered = NewStateProposal(
                    round_number=honest.round_number,
                    leader=leader,
                    new_state=bad_state,
                    transfers_digest=honest.transfers_digest,
                    signature=honest.signature,
                )
            try:
                consensus.run(
                    leader, self.stake, [transfer], tampered_proposal=tampered
                )
            except LeaderMisbehaviourError:
                total_messages += consensus.messages_exchanged
                self.expel_governor(leader, reason="tampered NEW_STATE")
                continue
            self.stake.apply(transfer)
            total_messages += consensus.messages_exchanged
            self.metrics.stake_messages += total_messages
            self.metrics.governor_messages += total_messages
            return total_messages
        raise LeaderMisbehaviourError(
            "no honest leader could be elected for the stake transfer "
            f"(expelled: {sorted(self._expelled)})"
        )

    # -- failure injection & expulsion ---------------------------------------

    def mark_byzantine_governor(self, gid: str) -> None:
        """Fault-inject: this governor tampers NEW_STATE when leading."""
        if gid not in self.governors:
            raise ConfigurationError(f"unknown governor {gid!r}")
        self._byzantine.add(gid)

    def expel_governor(self, gid: str, reason: str = "") -> None:
        """Remove a governor from future leader elections.

        The expelled governor keeps its ledger replica (it can still
        read), but can no longer lead rounds or stake-consensus.

        Raises:
            ConfigurationError: expelling the last eligible governor.
        """
        if gid not in self.governors:
            raise ConfigurationError(f"unknown governor {gid!r}")
        remaining = [
            g for g in self.topology.governors
            if g != gid and g not in self._expelled
        ]
        if not remaining:
            raise ConfigurationError("cannot expel the last eligible governor")
        self._expelled.add(gid)
        self.expulsions.append((gid, reason))

    @property
    def expelled_governors(self) -> frozenset[str]:
        """Governors removed from leadership."""
        return frozenset(self._expelled)

    # -- finalisation -------------------------------------------------------

    def finalize(self) -> None:
        """Reveal every still-pending unchecked truth for loss accounting.

        Theorem 1 assumes all real states are revealed "sometime"; calling
        this at the end of a run closes the books so governor metrics
        reflect the full stream.  When the safety auditor is enabled
        (:mod:`repro.audit.config`, the default) it then runs the
        harness-level audit — cross-replica agreement plus the Theorem-1
        regret guardrail — and leaves the verdict in ``audit_report``.
        """
        for governor in self.governors.values():
            for tx_id in list(governor._pending_unchecked):
                governor.reveal_truth(tx_id, self.oracle)
        cfg = audit_config.get_config()
        if cfg.enabled:
            from repro.audit.auditor import harness_audit

            self.audit_report = harness_audit(
                "harness",
                self.ledgers(),
                list(self.governors.values()),
                r=self.topology.r,
                beta=self.params.beta,
                round_number=self._round,
                s_min=cfg.s_min,
                obs=self.obs,
            )

    # -- convenience accessors -----------------------------------------------

    @property
    def round_number(self) -> int:
        """Rounds executed so far."""
        return self._round

    def governor(self, gid: str) -> Governor:
        """Agent lookup helper."""
        return self.governors[gid]

    def ledgers(self) -> list:
        """Every governor's ledger replica (for property checks)."""
        return [g.ledger for g in self.governors.values()]

    def collector_masses(self) -> dict[str, float]:
        """Each collector's reputation mass (mean over governors).

        Same contract as
        :meth:`repro.core.netengine.NetworkedProtocolEngine.collector_masses`
        — the reputation-weighted shard-assignment signal, exposed on
        both engines so sharding analyses can use either.
        """
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        for governor in self.governors.values():
            book = governor.book
            for cid in book.collectors():
                mass = float(sum(book.vector(cid).provider_weights.values()))
                totals[cid] = totals.get(cid, 0.0) + mass
                counts[cid] = counts.get(cid, 0) + 1
        return {cid: totals[cid] / counts[cid] for cid in sorted(totals)}
