"""Stake accounting for the PoS leader election.

Section 3.4.3: each governor ``g_j`` holds ``y_j`` units of stake; a
governor's chance of leading a round is proportional to his stake.
Stake units are discrete and individually enumerable because the VRF is
evaluated *per unit*: ``VRF_{g_j}(r, j, u)`` for ``1 <= u <= y_j``.

:class:`StakeLedger` tracks balances and applies signed stake-transfer
transactions; the 3-step stake-transform consensus commits a new state
snapshot at the end of a round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature
from repro.exceptions import StakeError

__all__ = ["StakeTransfer", "StakeLedger"]


@dataclass(frozen=True)
class StakeTransfer:
    """A signed stake movement between governors."""

    sender: str
    receiver: str
    amount: int
    nonce: int
    signature: Signature

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise StakeError(f"transfer amount must be positive, got {self.amount}")
        if self.sender == self.receiver:
            raise StakeError("self-transfers are meaningless")

    def signed_message(self) -> tuple:
        """The structure the sender signed."""
        return ("stake-transfer", self.sender, self.receiver, self.amount, self.nonce)

    def canonical_bytes(self) -> bytes:
        """Stable encoding (for inclusion in NEW_STATE hashing)."""
        return hash_value(self.signed_message())


@dataclass
class StakeLedger:
    """Integral stake balances with transfer application and snapshots."""

    _balances: dict[str, int] = field(default_factory=dict)

    @staticmethod
    def from_balances(balances: Mapping[str, int]) -> "StakeLedger":
        """Build a ledger from initial balances.

        Raises:
            StakeError: on a negative balance.
        """
        for gov, amount in balances.items():
            if amount < 0:
                raise StakeError(f"negative initial stake for {gov!r}: {amount}")
        return StakeLedger(_balances=dict(balances))

    def balance(self, governor: str) -> int:
        """Stake units held by ``governor`` (0 if none)."""
        return self._balances.get(governor, 0)

    @property
    def total(self) -> int:
        """Total stake in the system."""
        return sum(self._balances.values())

    def governors(self) -> Iterator[str]:
        """Governors with a positive balance."""
        for gov, amount in self._balances.items():
            if amount > 0:
                yield gov

    def apply(self, transfer: StakeTransfer) -> None:
        """Apply a transfer.

        Raises:
            StakeError: insufficient balance.
        """
        if self.balance(transfer.sender) < transfer.amount:
            raise StakeError(
                f"{transfer.sender!r} holds {self.balance(transfer.sender)} "
                f"stake, cannot send {transfer.amount}"
            )
        self._balances[transfer.sender] -= transfer.amount
        self._balances[transfer.receiver] = (
            self._balances.get(transfer.receiver, 0) + transfer.amount
        )

    def applied(self, transfers: list[StakeTransfer]) -> "StakeLedger":
        """A copy with ``transfers`` applied in order (self unchanged)."""
        copy = StakeLedger(_balances=dict(self._balances))
        for transfer in transfers:
            copy.apply(transfer)
        return copy

    def snapshot(self) -> dict[str, int]:
        """A plain-dict snapshot (the NEW_STATE content)."""
        return dict(self._balances)

    def state_hash(self) -> bytes:
        """Commitment to the current balances."""
        return hash_value(("stake-state", self.snapshot()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StakeLedger):
            return NotImplemented
        return self.snapshot() == other.snapshot()
