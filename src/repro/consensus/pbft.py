"""Baseline: Practical Byzantine Fault Tolerance (Castro-Liskov).

The paper's related work contrasts its PoS+reputation design with the
PBFT family used by Hyperledger Fabric (<= v0.6), Tendermint and
BFT-SMaRt.  Experiment E7 compares message complexity: PBFT commits a
block in ``O(m^2)`` governor messages *every round*, while the paper's
ordinary-block path needs only ``O(b_limit * m)`` (leader broadcast)
because governors are trusted not to subvert the chain.

This is a faithful single-shot PBFT core: pre-prepare / prepare / commit
with quorum ``2f + 1`` out of ``m = 3f + 1`` replicas, digest checks,
signature checks, and a view-change path when the primary equivocates or
stalls.  It is deliberately self-contained (no network dependency) so
the message accounting is exact; the protocol engine never uses it — it
exists as the comparison baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import hash_value
from repro.crypto.identity import IdentityManager
from repro.crypto.signatures import Signature, sign
from repro.exceptions import ConsensusError, ProtocolViolationError

__all__ = ["PBFTPhase", "PBFTMessage", "PBFTReplica", "PBFTCluster", "pbft_quorum"]


def pbft_quorum(m: int) -> int:
    """The prepare/commit quorum: ``2f + 1`` where ``f = (m - 1) // 3``."""
    if m < 4:
        raise ConsensusError(f"PBFT needs m >= 4 replicas (m = 3f + 1), got {m}")
    f = (m - 1) // 3
    return 2 * f + 1


class PBFTPhase(enum.Enum):
    """The three normal-case phases plus view change."""

    PRE_PREPARE = "pre-prepare"
    PREPARE = "prepare"
    COMMIT = "commit"
    VIEW_CHANGE = "view-change"


@dataclass(frozen=True)
class PBFTMessage:
    """One signed PBFT protocol message."""

    phase: PBFTPhase
    view: int
    sequence: int
    digest: bytes
    sender: str
    signature: Signature
    payload: Any = None
    kind: str = field(default="pbft", repr=False)

    def signed_message(self) -> tuple:
        """The structure the signature covers."""
        return ("pbft", self.phase.value, self.view, self.sequence, self.digest)


def _signed(key, phase: PBFTPhase, view: int, sequence: int, digest: bytes, payload=None):
    message = ("pbft", phase.value, view, sequence, digest)
    return PBFTMessage(
        phase=phase, view=view, sequence=sequence, digest=digest,
        sender=key.owner, signature=sign(key, message), payload=payload,
    )


@dataclass
class PBFTReplica:
    """One replica's state machine for a single consensus instance."""

    im: IdentityManager
    replica_id: str
    replicas: list[str]
    view: int = 0
    prepared: dict[bytes, set[str]] = field(default_factory=dict)
    committed: dict[bytes, set[str]] = field(default_factory=dict)
    decided: Any = None
    decided_digest: bytes | None = None
    pre_prepare_digest: bytes | None = None
    wants_view_change: bool = False

    @property
    def quorum(self) -> int:
        """Votes needed to prepare/commit."""
        return pbft_quorum(len(self.replicas))

    def primary_of_view(self, view: int) -> str:
        """Round-robin primary assignment."""
        return self.replicas[view % len(self.replicas)]

    def _check(self, msg: PBFTMessage) -> bool:
        return self.im.verify(msg.sender, msg.signed_message(), msg.signature)

    def on_pre_prepare(self, msg: PBFTMessage) -> PBFTMessage | None:
        """Handle PRE-PREPARE; reply with our PREPARE or start view change."""
        if not self._check(msg) or msg.sender != self.primary_of_view(msg.view):
            self.wants_view_change = True
            return None
        if msg.payload is not None and hash_value(msg.payload) != msg.digest:
            self.wants_view_change = True
            return None
        if self.pre_prepare_digest is not None and self.pre_prepare_digest != msg.digest:
            # Equivocating primary: two pre-prepares for the same (v, n).
            self.wants_view_change = True
            return None
        self.pre_prepare_digest = msg.digest
        key = self.im.record(self.replica_id).key
        return _signed(key, PBFTPhase.PREPARE, msg.view, msg.sequence, msg.digest)

    def on_prepare(self, msg: PBFTMessage) -> PBFTMessage | None:
        """Handle PREPARE; once 2f+1 collected, reply with our COMMIT."""
        if not self._check(msg):
            return None
        votes = self.prepared.setdefault(msg.digest, set())
        votes.add(msg.sender)
        if len(votes) == self.quorum and self.pre_prepare_digest == msg.digest:
            key = self.im.record(self.replica_id).key
            return _signed(key, PBFTPhase.COMMIT, msg.view, msg.sequence, msg.digest)
        return None

    def on_commit(self, msg: PBFTMessage, payload: Any) -> bool:
        """Handle COMMIT; returns True when this replica decides."""
        if not self._check(msg):
            return False
        votes = self.committed.setdefault(msg.digest, set())
        votes.add(msg.sender)
        if len(votes) >= self.quorum and self.decided is None:
            self.decided = payload
            self.decided_digest = msg.digest
            return True
        return False


@dataclass
class PBFTCluster:
    """Drive one PBFT consensus instance across in-process replicas.

    Message counting is exact and matches the textbook complexity:
    pre-prepare ``m-1``, prepare ``(m-1)^2`` (replica-to-replica
    all-to-all, primary does not re-prepare), commit ``m * (m-1)`` —
    total Theta(m^2).
    """

    im: IdentityManager
    replica_ids: list[str]
    messages_exchanged: int = 0
    byzantine: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if len(self.replica_ids) < 4:
            raise ConsensusError("PBFT needs at least 4 replicas")
        self.replicas = {
            rid: PBFTReplica(im=self.im, replica_id=rid, replicas=list(self.replica_ids))
            for rid in self.replica_ids
        }

    @property
    def max_faulty(self) -> int:
        """``f`` — Byzantine replicas tolerated."""
        return (len(self.replica_ids) - 1) // 3

    def mark_byzantine(self, replica_id: str) -> None:
        """Fault-inject: this replica stays silent in prepare/commit."""
        if replica_id not in self.replicas:
            raise ProtocolViolationError(f"unknown replica {replica_id!r}")
        self.byzantine.add(replica_id)

    def run(self, payload: Any, view: int = 0, sequence: int = 1) -> Any:
        """Execute one instance; returns the decided payload.

        Raises:
            ConsensusError: when too many replicas are faulty to decide.
        """
        primary_id = self.replica_ids[view % len(self.replica_ids)]
        if primary_id in self.byzantine:
            # A silent primary triggers a view change; retry in the next
            # view, counting the view-change all-to-all traffic.
            self.messages_exchanged += len(self.replica_ids) * (len(self.replica_ids) - 1)
            return self.run(payload, view=view + 1, sequence=sequence)
        digest = hash_value(payload)
        primary_key = self.im.record(primary_id).key
        pre = _signed(primary_key, PBFTPhase.PRE_PREPARE, view, sequence, digest, payload)
        honest = [rid for rid in self.replica_ids if rid not in self.byzantine]

        # Phase 1: primary -> all others.
        prepares: list[PBFTMessage] = []
        for rid in self.replica_ids:
            if rid == primary_id:
                continue
            self.messages_exchanged += 1
            if rid in self.byzantine:
                continue
            reply = self.replicas[rid].on_pre_prepare(pre)
            if reply is not None:
                prepares.append(reply)
        # The primary "prepares" implicitly via its pre-prepare; model it
        # as a prepare vote so quorum counting matches the paper.
        self.replicas[primary_id].pre_prepare_digest = digest
        prepares.append(
            _signed(primary_key, PBFTPhase.PREPARE, view, sequence, digest)
        )

        # Phase 2: all-to-all prepare.
        commits: list[PBFTMessage] = []
        for msg in prepares:
            for rid in self.replica_ids:
                if rid == msg.sender:
                    continue
                self.messages_exchanged += 1
                if rid in self.byzantine:
                    continue
                reply = self.replicas[rid].on_prepare(msg)
                if reply is not None:
                    commits.append(reply)
        # Feed each replica its own prepare too (local vote, no message).
        for msg in prepares:
            if msg.sender in self.byzantine:
                continue
            reply = self.replicas[msg.sender].on_prepare(msg)
            if reply is not None:
                commits.append(reply)

        # Phase 3: all-to-all commit.
        decided_replicas: set[str] = set()
        for msg in commits:
            for rid in self.replica_ids:
                if rid == msg.sender:
                    continue
                self.messages_exchanged += 1
                if rid in self.byzantine:
                    continue
                if self.replicas[rid].on_commit(msg, payload):
                    decided_replicas.add(rid)
            if msg.sender not in self.byzantine:
                if self.replicas[msg.sender].on_commit(msg, payload):
                    decided_replicas.add(msg.sender)

        if len(decided_replicas) < len(honest):
            undecided = set(honest) - decided_replicas
            raise ConsensusError(
                f"PBFT failed to decide on {len(undecided)} honest replicas "
                f"(byzantine={len(self.byzantine)}, f_max={self.max_faulty})"
            )
        decisions = {self.replicas[rid].decided_digest for rid in honest}
        if len(decisions) != 1:
            raise ConsensusError("honest replicas decided different digests")
        return payload
