"""Wire messages exchanged among governors.

Each message dataclass carries a ``kind`` tag used by the network layer's
per-kind counters, which is how the complexity experiments (E7) separate
ordinary-block traffic from stake-transform traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signatures import Signature
from repro.crypto.vrf import VRFOutput
from repro.ledger.block import Block

__all__ = [
    "VRFAnnouncement",
    "BlockProposal",
    "CommitVote",
    "NewStateProposal",
    "StateAck",
    "StateCommit",
    "ExpelEvidence",
]


@dataclass(frozen=True)
class VRFAnnouncement:
    """A governor's per-round VRF outputs, one per stake unit."""

    round_number: int
    governor: str
    outputs: tuple[VRFOutput, ...]
    kind: str = field(default="vrf-announce", repr=False)


@dataclass(frozen=True)
class BlockProposal:
    """The leader's ordinary block for the round."""

    round_number: int
    block: Block
    leader: str
    kind: str = field(default="block-proposal", repr=False)


@dataclass(frozen=True)
class CommitVote:
    """A governor's signed commitment to one block hash at one serial.

    The safety auditor's equivocation surface: honest governors send an
    identical vote to every peer after appending a block; a Byzantine
    governor that signs two different hashes for one serial hands any
    observer holding both votes a *provable* violation (quarantine bar).

    Votes ride a fixed-delay, fault-exempt network path (kind
    ``audit-commit`` is in :attr:`repro.faults.FaultInjector.EXEMPT_KINDS`
    and their sends draw no latency RNG), so enabling the auditor leaves
    every seeded simulation stream — and therefore the ledgers —
    bit-identical.
    """

    governor: str
    serial: int
    block_hash: bytes
    round_number: int
    signature: Signature
    kind: str = field(default="audit-commit", repr=False)

    def signed_message(self) -> tuple:
        """The structure the governor's signature covers."""
        return (
            "audit-commit",
            self.governor,
            self.serial,
            self.block_hash,
            self.round_number,
        )


@dataclass(frozen=True)
class NewStateProposal:
    """Step 1 of the stake-transform consensus: NEW_STATE + leader signature."""

    round_number: int
    leader: str
    new_state: dict[str, int]
    transfers_digest: bytes
    signature: Signature
    kind: str = field(default="new-state", repr=False)

    def signed_message(self) -> tuple:
        """The structure the leader's signature covers."""
        return ("new-state", self.round_number, self.new_state, self.transfers_digest)


@dataclass(frozen=True)
class StateAck:
    """Step 2: a non-leader's signature over the leader's proposal."""

    round_number: int
    governor: str
    proposal_digest: bytes
    signature: Signature
    kind: str = field(default="state-ack", repr=False)

    def signed_message(self) -> tuple:
        """The structure the acker's signature covers."""
        return ("state-ack", self.round_number, self.proposal_digest)


@dataclass(frozen=True)
class StateCommit:
    """Step 3: the stake-transform block — NEW_STATE plus all signatures."""

    round_number: int
    leader: str
    new_state: dict[str, int]
    acks: tuple[StateAck, ...]
    kind: str = field(default="state-commit", repr=False)


@dataclass(frozen=True)
class ExpelEvidence:
    """Broadcast by a governor that caught the leader misbehaving."""

    round_number: int
    accuser: str
    reason: str
    proposal: NewStateProposal
    kind: str = field(default="expel-evidence", repr=False)
