"""Wire messages exchanged among governors.

Each message dataclass carries a ``kind`` tag used by the network layer's
per-kind counters, which is how the complexity experiments (E7) separate
ordinary-block traffic from stake-transform traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signatures import Signature
from repro.crypto.vrf import VRFOutput
from repro.ledger.block import Block

__all__ = [
    "VRFAnnouncement",
    "BlockProposal",
    "NewStateProposal",
    "StateAck",
    "StateCommit",
    "ExpelEvidence",
]


@dataclass(frozen=True)
class VRFAnnouncement:
    """A governor's per-round VRF outputs, one per stake unit."""

    round_number: int
    governor: str
    outputs: tuple[VRFOutput, ...]
    kind: str = field(default="vrf-announce", repr=False)


@dataclass(frozen=True)
class BlockProposal:
    """The leader's ordinary block for the round."""

    round_number: int
    block: Block
    leader: str
    kind: str = field(default="block-proposal", repr=False)


@dataclass(frozen=True)
class NewStateProposal:
    """Step 1 of the stake-transform consensus: NEW_STATE + leader signature."""

    round_number: int
    leader: str
    new_state: dict[str, int]
    transfers_digest: bytes
    signature: Signature
    kind: str = field(default="new-state", repr=False)

    def signed_message(self) -> tuple:
        """The structure the leader's signature covers."""
        return ("new-state", self.round_number, self.new_state, self.transfers_digest)


@dataclass(frozen=True)
class StateAck:
    """Step 2: a non-leader's signature over the leader's proposal."""

    round_number: int
    governor: str
    proposal_digest: bytes
    signature: Signature
    kind: str = field(default="state-ack", repr=False)

    def signed_message(self) -> tuple:
        """The structure the acker's signature covers."""
        return ("state-ack", self.round_number, self.proposal_digest)


@dataclass(frozen=True)
class StateCommit:
    """Step 3: the stake-transform block — NEW_STATE plus all signatures."""

    round_number: int
    leader: str
    new_state: dict[str, int]
    acks: tuple[StateAck, ...]
    kind: str = field(default="state-commit", repr=False)


@dataclass(frozen=True)
class ExpelEvidence:
    """Broadcast by a governor that caught the leader misbehaving."""

    round_number: int
    accuser: str
    reason: str
    proposal: NewStateProposal
    kind: str = field(default="expel-evidence", repr=False)
