"""The 3-step stake-transform consensus (Section 3.4.3).

At the end of a round whose transactions moved stake, the leader commits
a ``NEW_STATE`` snapshot:

1. The leader combines the previous stake state with the transfers he
   received this round and broadcasts ``(NEW_STATE, sig_leader)``.
2. Each non-leader verifies the signature and checks NEW_STATE for
   consistency with the transfers *he* received; on success he returns
   his signature on the proposal, otherwise he broadcasts
   :class:`ExpelEvidence` to depose the leader.
3. Once the leader holds signatures from **all** governors he packs
   NEW_STATE plus the signatures into the stake-transform block and
   broadcasts it.

Requiring all ``m`` signatures is sound here because the paper's threat
model says governors may *conceal transactions* but will not subvert the
chain; the protocol therefore needs ``O(m^2)`` messages (transfer
rebroadcast among governors) as the paper's complexity analysis states,
which experiment E7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.messages import (
    ExpelEvidence,
    NewStateProposal,
    StateAck,
    StateCommit,
)
from repro.consensus.stake import StakeLedger, StakeTransfer
from repro.crypto.hashing import hash_value
from repro.crypto.identity import IdentityManager
from repro.crypto.signatures import SigningKey, sign
from repro.exceptions import LeaderMisbehaviourError, ProtocolViolationError

__all__ = [
    "transfers_digest",
    "make_proposal",
    "evaluate_proposal",
    "make_commit",
    "verify_commit",
    "StakeConsensusRound",
]


def transfers_digest(transfers: list[StakeTransfer]) -> bytes:
    """Order-independent commitment to a transfer set.

    Governors may receive the round's transfers in different orders from
    different peers; sorting by canonical bytes makes the digest depend
    only on the *set*.
    """
    encoded = sorted(t.canonical_bytes() for t in transfers)
    return hash_value(("transfers", encoded))


def make_proposal(
    key: SigningKey,
    round_number: int,
    prev_state: StakeLedger,
    transfers: list[StakeTransfer],
) -> NewStateProposal:
    """Step 1: the leader derives and signs NEW_STATE."""
    ordered = sorted(transfers, key=lambda t: t.canonical_bytes())
    new_state = prev_state.applied(ordered).snapshot()
    digest = transfers_digest(transfers)
    message = ("new-state", round_number, new_state, digest)
    return NewStateProposal(
        round_number=round_number,
        leader=key.owner,
        new_state=new_state,
        transfers_digest=digest,
        signature=sign(key, message),
    )


def evaluate_proposal(
    im: IdentityManager,
    key: SigningKey,
    proposal: NewStateProposal,
    prev_state: StakeLedger,
    local_transfers: list[StakeTransfer],
) -> StateAck | ExpelEvidence:
    """Step 2: a non-leader checks the proposal and signs or accuses.

    Consistency means: applying the transfers *this* governor received
    (every transfer is broadcast to all governors) to the previous state
    reproduces the leader's NEW_STATE.
    """
    if not im.verify(proposal.leader, proposal.signed_message(), proposal.signature):
        return ExpelEvidence(
            round_number=proposal.round_number,
            accuser=key.owner,
            reason="bad leader signature on NEW_STATE",
            proposal=proposal,
        )
    local_digest = transfers_digest(local_transfers)
    ordered = sorted(local_transfers, key=lambda t: t.canonical_bytes())
    expected = prev_state.applied(ordered).snapshot()
    if proposal.transfers_digest != local_digest or proposal.new_state != expected:
        return ExpelEvidence(
            round_number=proposal.round_number,
            accuser=key.owner,
            reason="NEW_STATE inconsistent with locally received transfers",
            proposal=proposal,
        )
    digest = hash_value(("proposal", proposal.new_state, proposal.transfers_digest))
    message = ("state-ack", proposal.round_number, digest)
    return StateAck(
        round_number=proposal.round_number,
        governor=key.owner,
        proposal_digest=digest,
        signature=sign(key, message),
    )


def make_commit(proposal: NewStateProposal, acks: list[StateAck]) -> StateCommit:
    """Step 3: pack NEW_STATE and all collected signatures."""
    return StateCommit(
        round_number=proposal.round_number,
        leader=proposal.leader,
        new_state=proposal.new_state,
        acks=tuple(sorted(acks, key=lambda a: a.governor)),
    )


def verify_commit(
    im: IdentityManager, commit: StateCommit, governors: list[str]
) -> None:
    """Validate a stake-transform block on receipt.

    Every non-leader governor must have signed the same proposal digest.

    Raises:
        ProtocolViolationError: missing or invalid signatures.
    """
    expected_signers = {g for g in governors if g != commit.leader}
    signers = {ack.governor for ack in commit.acks}
    if signers != expected_signers:
        missing = expected_signers - signers
        extra = signers - expected_signers
        raise ProtocolViolationError(
            f"commit signer set mismatch: missing={sorted(missing)} extra={sorted(extra)}"
        )
    digests = {ack.proposal_digest for ack in commit.acks}
    if len(digests) > 1:
        raise ProtocolViolationError("acks cover different proposal digests")
    for ack in commit.acks:
        if not im.verify(ack.governor, ack.signed_message(), ack.signature):
            raise ProtocolViolationError(f"invalid ack signature from {ack.governor!r}")


@dataclass
class StakeConsensusRound:
    """Drive one full stake-transform round among in-process governors.

    Counts messages per the paper's accounting: the transfer rebroadcast
    (every governor tells every other governor about transfers he is a
    party to) is the O(m^2) term; the 3-step exchange itself adds
    O(m).  Benches read :attr:`messages_exchanged`.

    Raises:
        LeaderMisbehaviourError: when any governor emits expel evidence
            (the caller then removes the leader and re-runs the round,
            mirroring the CycLedger expulsion the paper cites).
    """

    im: IdentityManager
    governors: list[str]
    messages_exchanged: int = 0
    evidence: list[ExpelEvidence] = field(default_factory=list)

    def run(
        self,
        leader: str,
        prev_state: StakeLedger,
        transfers: list[StakeTransfer],
        tampered_proposal: NewStateProposal | None = None,
    ) -> StateCommit:
        """Execute steps 1-3 and return the committed stake block.

        Args:
            leader: The round leader (from PoS election).
            prev_state: Stake state before this round.
            transfers: The round's (verified) transfer set; in a real run
                each governor holds the same set thanks to the O(m^2)
                rebroadcast, which we account for in message counts.
            tampered_proposal: Test hook — substitute the leader's step-1
                message to exercise the expulsion path.

        Returns:
            The verified :class:`StateCommit`.
        """
        if leader not in self.governors:
            raise ProtocolViolationError(f"leader {leader!r} is not a governor")
        m = len(self.governors)
        # O(m^2) transfer dissemination: each party to a transfer
        # broadcasts it to all m governors.
        self.messages_exchanged += len(transfers) * m

        leader_key = self.im.record(leader).key
        proposal = tampered_proposal or make_proposal(
            leader_key, round_number=0, prev_state=prev_state, transfers=transfers
        )
        # Step 1 broadcast: leader -> all others.
        self.messages_exchanged += m - 1

        acks: list[StateAck] = []
        for gov in self.governors:
            if gov == leader:
                continue
            verdict = evaluate_proposal(
                self.im, self.im.record(gov).key, proposal, prev_state, transfers
            )
            if isinstance(verdict, ExpelEvidence):
                self.evidence.append(verdict)
                # Evidence broadcast: accuser -> all others.
                self.messages_exchanged += m - 1
            else:
                acks.append(verdict)
                self.messages_exchanged += 1  # ack back to the leader
        if self.evidence:
            raise LeaderMisbehaviourError(
                f"leader {leader!r} accused: {self.evidence[0].reason}"
            )
        commit = make_commit(proposal, acks)
        # Step 3 broadcast: leader -> all others.
        self.messages_exchanged += m - 1
        verify_commit(self.im, commit, self.governors)
        return commit
