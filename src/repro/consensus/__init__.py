"""Consensus substrate: stake, PoS/VRF leader election, stake-transform
consensus, and the PBFT comparison baseline."""

from repro.consensus.messages import (
    BlockProposal,
    ExpelEvidence,
    NewStateProposal,
    StateAck,
    StateCommit,
    VRFAnnouncement,
)
from repro.consensus.pbft import (
    PBFTCluster,
    PBFTMessage,
    PBFTPhase,
    PBFTReplica,
    pbft_quorum,
)
from repro.consensus.pos import LeaderElection, announce_stakes, elect_leader
from repro.consensus.raft import RaftCluster, RaftNode, RaftRole
from repro.consensus.stake import StakeLedger, StakeTransfer
from repro.consensus.tendermint import TendermintCluster, TMStep, TMVote, tm_quorum
from repro.consensus.stake_consensus import (
    StakeConsensusRound,
    evaluate_proposal,
    make_commit,
    make_proposal,
    transfers_digest,
    verify_commit,
)

__all__ = [
    "BlockProposal",
    "ExpelEvidence",
    "LeaderElection",
    "NewStateProposal",
    "PBFTCluster",
    "PBFTMessage",
    "PBFTPhase",
    "PBFTReplica",
    "RaftCluster",
    "RaftNode",
    "RaftRole",
    "StakeConsensusRound",
    "StakeLedger",
    "StakeTransfer",
    "StateAck",
    "StateCommit",
    "TMStep",
    "TMVote",
    "TendermintCluster",
    "VRFAnnouncement",
    "announce_stakes",
    "elect_leader",
    "evaluate_proposal",
    "make_commit",
    "make_proposal",
    "pbft_quorum",
    "tm_quorum",
    "transfers_digest",
    "verify_commit",
]
