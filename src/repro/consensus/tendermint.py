"""Baseline: Tendermint-core-style BFT with per-block leader rotation.

The paper's related work (Section 2.2) singles out Tendermint's
*"continuous rotation of the leader — the leader is changed after every
block"* as its most momentous difference from PBFT.  This module
implements that scheme's single-height core faithfully enough for the
complexity and fault-tolerance comparisons:

* the proposer of height ``h``, round ``rnd`` is
  ``validators[(h + rnd) % n]`` — deterministic rotation;
* **propose / prevote / precommit**: the proposer broadcasts a block;
  every validator broadcasts a signed prevote for it (or nil); on
  seeing ``2f + 1`` prevotes a validator broadcasts a precommit; on
  ``2f + 1`` precommits it decides;
* a silent or equivocating proposer yields nil prevotes; validators
  move to the next round (rotating the proposer) — liveness under
  ``f < n/3`` faults.

Message complexity is Theta(n^2) per height (two all-to-all vote
phases), like PBFT — the contrast with the paper's O(b_limit * m)
ordinary-block path.  Unlike PBFT's view change, rotation is built into
the happy path, so a failed proposer costs exactly one extra round.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import hash_value
from repro.crypto.identity import IdentityManager
from repro.crypto.signatures import Signature, sign
from repro.exceptions import ConsensusError

__all__ = ["TMStep", "TMVote", "TendermintCluster", "tm_quorum"]

#: Sentinel digest for nil votes.
NIL = b"\x00" * 32


def tm_quorum(n: int) -> int:
    """Votes needed to advance: ``2f + 1`` with ``f = (n - 1) // 3``."""
    if n < 4:
        raise ConsensusError(f"Tendermint needs n >= 4 validators, got {n}")
    return 2 * ((n - 1) // 3) + 1


class TMStep(enum.Enum):
    """Protocol steps within one round."""

    PROPOSE = "propose"
    PREVOTE = "prevote"
    PRECOMMIT = "precommit"


@dataclass(frozen=True)
class TMVote:
    """A signed prevote or precommit."""

    step: TMStep
    height: int
    round: int
    digest: bytes
    voter: str
    signature: Signature

    def signed_message(self) -> tuple:
        """The structure the signature covers."""
        return ("tm-vote", self.step.value, self.height, self.round, self.digest)

    @property
    def is_nil(self) -> bool:
        """Whether this vote is for nil (no acceptable proposal seen)."""
        return self.digest == NIL


@dataclass
class TendermintCluster:
    """Drive one height of Tendermint-style consensus in process.

    Message counting: propose ``n - 1``; prevote and precommit
    ``n * (n - 1)`` each (all-to-all, excluding self-delivery) — per
    round, whether or not the round decides.
    """

    im: IdentityManager
    validator_ids: list[str]
    messages_exchanged: int = 0
    rounds_used: int = 0
    faulty: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if len(self.validator_ids) < 4:
            raise ConsensusError("Tendermint needs at least 4 validators")

    @property
    def n(self) -> int:
        """Validator count."""
        return len(self.validator_ids)

    @property
    def quorum(self) -> int:
        """The 2f+1 threshold."""
        return tm_quorum(self.n)

    @property
    def max_faulty(self) -> int:
        """``f`` — tolerated Byzantine validators."""
        return (self.n - 1) // 3

    def proposer_for(self, height: int, round_number: int) -> str:
        """Deterministic rotation: a *different* proposer every block."""
        return self.validator_ids[(height + round_number) % self.n]

    def mark_faulty(self, validator_id: str) -> None:
        """Fault-inject: this validator neither proposes nor votes."""
        if validator_id not in self.validator_ids:
            raise ConsensusError(f"unknown validator {validator_id!r}")
        self.faulty.add(validator_id)

    def _vote(self, voter: str, step: TMStep, height: int, rnd: int, digest: bytes) -> TMVote:
        key = self.im.record(voter).key
        message = ("tm-vote", step.value, height, rnd, digest)
        return TMVote(
            step=step, height=height, round=rnd, digest=digest,
            voter=voter, signature=sign(key, message),
        )

    def run(self, payload: Any, height: int = 1, max_rounds: int = 16) -> Any:
        """Decide one height; returns the decided payload.

        Raises:
            ConsensusError: quorum unreachable (too many faults) or the
                round budget is exhausted.
        """
        honest = [v for v in self.validator_ids if v not in self.faulty]
        if len(honest) < self.quorum:
            raise ConsensusError(
                f"only {len(honest)} honest validators < quorum {self.quorum}"
            )
        for rnd in range(max_rounds):
            self.rounds_used += 1
            proposer = self.proposer_for(height, rnd)
            proposer_alive = proposer not in self.faulty
            digest = hash_value((height, rnd, payload)) if proposer_alive else NIL
            # Propose: proposer -> everyone else (if alive).
            if proposer_alive:
                self.messages_exchanged += self.n - 1

            # Prevote: every honest validator broadcasts (all-to-all).
            prevotes: list[TMVote] = []
            for v in honest:
                vote_digest = digest if proposer_alive else NIL
                prevotes.append(self._vote(v, TMStep.PREVOTE, height, rnd, vote_digest))
                self.messages_exchanged += self.n - 1
            for vote in prevotes:
                if not self.im.verify(vote.voter, vote.signed_message(), vote.signature):
                    raise ConsensusError(f"invalid prevote from {vote.voter!r}")
            block_prevotes = sum(1 for v in prevotes if not v.is_nil)

            # Precommit: only with a 2f+1 prevote quorum for the block.
            if block_prevotes >= self.quorum:
                precommits = []
                for v in honest:
                    precommits.append(
                        self._vote(v, TMStep.PRECOMMIT, height, rnd, digest)
                    )
                    self.messages_exchanged += self.n - 1
                for vote in precommits:
                    if not self.im.verify(
                        vote.voter, vote.signed_message(), vote.signature
                    ):
                        raise ConsensusError(f"invalid precommit from {vote.voter!r}")
                if len(precommits) >= self.quorum:
                    return payload
            # Nil round: rotate the proposer and try again (validators
            # still exchanged their nil prevotes above).
        raise ConsensusError(f"no decision within {max_rounds} rounds")
