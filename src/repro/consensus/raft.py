"""Baseline: Raft leader election + log replication (crash-fault model).

The paper's related work (Section 2.2) notes that R3 Corda *"when
implemented with Raft ... tolerates half of the nodes' crashing"* —
the crash-fault-tolerant point of comparison against the Byzantine
baselines (PBFT, Tendermint) and the paper's trust-the-governors model.

This is a compact but honest single-decree-pipeline Raft:

* **terms & elections** — followers time out (seeded, randomised
  timeouts to break symmetry), become candidates, solicit votes; a
  majority elects a leader for the term; at most one leader per term
  (each node votes once per term);
* **log replication** — the leader appends client entries and
  replicates via AppendEntries; an entry commits once a majority of
  nodes store it; followers apply committed entries in order;
* **crash/restart** — crashed nodes drop all traffic; on restart they
  rejoin with their persistent state (term, vote, log) intact, as
  Raft's durability model requires.

The simulation advances in discrete ticks; per-tick message exchange is
counted, giving the E7-style complexity shape: steady-state replication
is O(n) messages per entry — cheaper than BFT's O(n^2) but with the
weaker (crash-only) fault model, which is exactly the trade the related
work discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ConsensusError

__all__ = ["RaftRole", "RaftNode", "RaftCluster"]


class RaftRole(enum.Enum):
    """A node's current role."""

    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class _LogEntry:
    term: int
    payload: Any


@dataclass
class RaftNode:
    """One Raft node's state (persistent + volatile)."""

    node_id: str
    # Persistent state (survives restarts).
    current_term: int = 0
    voted_for: str | None = None
    log: list[_LogEntry] = field(default_factory=list)
    # Volatile state.
    role: RaftRole = RaftRole.FOLLOWER
    commit_index: int = 0  # number of committed entries
    applied: list[Any] = field(default_factory=list)
    election_deadline: int = 0
    crashed: bool = False

    def apply_committed(self) -> None:
        """Apply entries up to the commit index, in order."""
        while len(self.applied) < self.commit_index:
            self.applied.append(self.log[len(self.applied)].payload)


@dataclass
class RaftCluster:
    """A tick-driven Raft cluster with crash injection.

    Args:
        node_ids: Cluster membership (odd sizes give clean majorities).
        seed: Randomised election timeouts (deterministic per seed).
        election_timeout: (min, max) ticks a follower waits before
            standing for election.
        heartbeat_interval: Ticks between leader AppendEntries rounds.
    """

    node_ids: list[str]
    seed: int = 0
    election_timeout: tuple[int, int] = (10, 20)
    heartbeat_interval: int = 3
    messages_exchanged: int = 0
    _tick: int = 0

    def __post_init__(self) -> None:
        if len(self.node_ids) < 3:
            raise ConsensusError("Raft needs >= 3 nodes for a useful majority")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConsensusError("duplicate node ids")
        lo, hi = self.election_timeout
        if not 0 < lo < hi:
            raise ConsensusError("need 0 < timeout_min < timeout_max")
        self._rng = np.random.default_rng(self.seed)
        self.nodes = {nid: RaftNode(node_id=nid) for nid in self.node_ids}
        for node in self.nodes.values():
            self._reset_election_timer(node)

    # -- helpers ------------------------------------------------------------

    @property
    def majority(self) -> int:
        """Votes/replicas needed: floor(n/2) + 1."""
        return len(self.node_ids) // 2 + 1

    def _reset_election_timer(self, node: RaftNode) -> None:
        lo, hi = self.election_timeout
        node.election_deadline = self._tick + int(self._rng.integers(lo, hi + 1))

    def _alive(self) -> list[RaftNode]:
        return [n for n in self.nodes.values() if not n.crashed]

    def leader(self) -> str | None:
        """The current leader's id, if one is alive and elected."""
        leaders = [
            n.node_id
            for n in self._alive()
            if n.role is RaftRole.LEADER
        ]
        if not leaders:
            return None
        # With correct vote accounting at most one leader per term exists;
        # stale leaders of older terms step down on contact.
        return max(leaders, key=lambda nid: self.nodes[nid].current_term)

    # -- crash injection ------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Stop a node (drops traffic; volatile leadership is lost)."""
        node = self._node(node_id)
        node.crashed = True
        node.role = RaftRole.FOLLOWER

    def restart(self, node_id: str) -> None:
        """Restart a crashed node with persistent state intact."""
        node = self._node(node_id)
        node.crashed = False
        node.role = RaftRole.FOLLOWER
        self._reset_election_timer(node)

    def _node(self, node_id: str) -> RaftNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ConsensusError(f"unknown node {node_id!r}") from None

    # -- the tick loop -----------------------------------------------------------

    def tick(self) -> None:
        """Advance one time step: timeouts, elections, heartbeats."""
        self._tick += 1
        for node in self._alive():
            if node.role is RaftRole.LEADER:
                if self._tick % self.heartbeat_interval == 0:
                    self._replicate(node)
            elif self._tick >= node.election_deadline:
                self._start_election(node)

    def _start_election(self, candidate: RaftNode) -> None:
        candidate.current_term += 1
        candidate.role = RaftRole.CANDIDATE
        candidate.voted_for = candidate.node_id
        self._reset_election_timer(candidate)
        votes = 1
        for peer in self._alive():
            if peer.node_id == candidate.node_id:
                continue
            self.messages_exchanged += 2  # RequestVote + response
            grant = self._maybe_grant_vote(peer, candidate)
            if grant:
                votes += 1
        if votes >= self.majority:
            candidate.role = RaftRole.LEADER
            # Depose stale leaders/candidates of older terms.
            for peer in self._alive():
                if peer.node_id != candidate.node_id and (
                    peer.current_term < candidate.current_term
                ):
                    peer.current_term = candidate.current_term
                    peer.role = RaftRole.FOLLOWER
                    peer.voted_for = None
            self._replicate(candidate)

    def _maybe_grant_vote(self, peer: RaftNode, candidate: RaftNode) -> bool:
        if candidate.current_term < peer.current_term:
            return False
        if candidate.current_term > peer.current_term:
            peer.current_term = candidate.current_term
            peer.voted_for = None
            peer.role = RaftRole.FOLLOWER
        # Election restriction: candidate's log must be at least as
        # up-to-date as the voter's.
        def last(node: RaftNode) -> tuple[int, int]:
            if not node.log:
                return (0, 0)
            return (node.log[-1].term, len(node.log))

        if last(candidate) < last(peer):
            return False
        if peer.voted_for in (None, candidate.node_id):
            peer.voted_for = candidate.node_id
            self._reset_election_timer(peer)
            return True
        return False

    def _replicate(self, leader: RaftNode) -> None:
        """One AppendEntries round: push the leader's log to followers."""
        stored = 1  # the leader itself
        for peer in self._alive():
            if peer.node_id == leader.node_id:
                continue
            self.messages_exchanged += 2  # AppendEntries + ack
            if peer.current_term > leader.current_term:
                # A newer term exists: step down.
                leader.role = RaftRole.FOLLOWER
                leader.current_term = peer.current_term
                leader.voted_for = None
                return
            peer.current_term = leader.current_term
            peer.role = RaftRole.FOLLOWER
            self._reset_election_timer(peer)
            # Full-log overwrite keeps the model simple and preserves the
            # Raft log-matching property (leader's log is authoritative).
            peer.log = list(leader.log)
            stored += 1
        if stored >= self.majority:
            leader.commit_index = len(leader.log)
            leader.apply_committed()
            for peer in self._alive():
                if peer.node_id != leader.node_id:
                    peer.commit_index = min(len(peer.log), leader.commit_index)
                    peer.apply_committed()

    # -- client API ----------------------------------------------------------------

    def run_until_leader(self, max_ticks: int = 2000) -> str:
        """Tick until a leader exists; returns its id.

        Raises:
            ConsensusError: no leader within the budget (e.g. no majority
                of nodes alive).
        """
        if len(self._alive()) < self.majority:
            raise ConsensusError(
                f"only {len(self._alive())} nodes alive < majority {self.majority}"
            )
        for _ in range(max_ticks):
            current = self.leader()
            if current is not None:
                return current
            self.tick()
        raise ConsensusError(f"no leader elected within {max_ticks} ticks")

    def submit(self, payload: Any, max_ticks: int = 2000) -> None:
        """Commit one entry through the current (or a fresh) leader.

        Raises:
            ConsensusError: when no majority is available.
        """
        leader_id = self.run_until_leader(max_ticks)
        leader = self.nodes[leader_id]
        already = any(entry.payload == payload for entry in leader.log)
        if not already:
            leader.log.append(_LogEntry(term=leader.current_term, payload=payload))
        start = self._tick
        while not any(p == payload for p in leader.applied):
            if self._tick - start > max_ticks:
                raise ConsensusError("entry failed to commit within the budget")
            if leader.crashed or leader.role is not RaftRole.LEADER:
                # Leadership moved: retry through the new leader (the
                # duplicate guard above makes the retry idempotent when
                # the entry already replicated).
                return self.submit(payload, max_ticks)
            self.tick()

    def committed_log(self, node_id: str) -> list[Any]:
        """The payloads a node has applied, in order."""
        return list(self._node(node_id).applied)
