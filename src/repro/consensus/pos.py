"""VRF-based Proof-of-Stake leader election (Section 3.4.3).

Per round, every governor evaluates the VRF once *per stake unit* and
broadcasts all (hash, proof) pairs.  After verifying every received
proof, each governor independently selects the owner of the globally
least hash value as the round leader — identical inputs, identical
winner, no extra communication.

Because each of the ``Y = sum_j y_j`` stake units draws an i.i.d.
uniform hash, the probability that governor ``g_j`` owns the minimum is
exactly ``y_j / Y`` — leadership proportional to stake, which experiment
E10 verifies with a chi-squared test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.identity import IdentityManager
from repro.crypto.vrf import vrf_evaluate, vrf_verify
from repro.crypto.signatures import SigningKey
from repro.consensus.messages import VRFAnnouncement
from repro.consensus.stake import StakeLedger
from repro.exceptions import LeaderElectionError, VRFError

__all__ = ["announce_stakes", "elect_leader", "LeaderElection"]


def announce_stakes(
    key: SigningKey, round_number: int, governor_index: int, stake_units: int
) -> VRFAnnouncement:
    """Produce the VRF announcement for one governor's stake.

    The paper indexes stake units ``1 <= u <= y_j``; we keep that
    convention in the VRF input.
    """
    outputs = tuple(
        vrf_evaluate(key, round_number, governor_index, unit)
        for unit in range(1, stake_units + 1)
    )
    return VRFAnnouncement(round_number=round_number, governor=key.owner, outputs=outputs)


def _verify_announcement(
    im: IdentityManager,
    announcement: VRFAnnouncement,
    round_number: int,
    governor_index: int,
    expected_units: int,
) -> None:
    """Check an announcement's proofs and shape against the stake ledger."""
    if announcement.round_number != round_number:
        raise VRFError(
            f"{announcement.governor!r} announced for round "
            f"{announcement.round_number}, expected {round_number}"
        )
    if len(announcement.outputs) != expected_units:
        raise VRFError(
            f"{announcement.governor!r} announced {len(announcement.outputs)} "
            f"VRF outputs but holds {expected_units} stake units"
        )
    key = im.record(announcement.governor).key
    for unit, output in enumerate(announcement.outputs, start=1):
        if not vrf_verify(key, output):
            raise VRFError(
                f"VRF proof of {announcement.governor!r} unit {unit} failed verification"
            )
        expected = vrf_evaluate(key, round_number, governor_index, unit)
        if expected.value != output.value:
            raise VRFError(
                f"{announcement.governor!r} unit {unit} hash does not match "
                "the canonical VRF input (r, j, u)"
            )


def elect_leader(
    im: IdentityManager,
    stake: StakeLedger,
    governor_order: list[str],
    round_number: int,
    announcements: list[VRFAnnouncement],
) -> str:
    """Deterministically select the round leader from verified announcements.

    Args:
        im: Identity Manager used to verify VRF proofs.
        stake: Current stake balances (shape check).
        governor_order: Canonical governor ordering fixing index ``j``.
        round_number: The round being elected.
        announcements: One announcement per staked governor.

    Returns:
        The leader's governor id.

    Raises:
        LeaderElectionError: no stake in the system or missing
            announcements from staked governors.
        VRFError: a proof failed verification.
    """
    if stake.total <= 0:
        raise LeaderElectionError("cannot elect a leader with zero total stake")
    by_gov = {a.governor: a for a in announcements}
    index_of = {gov: j for j, gov in enumerate(governor_order)}
    best: tuple[int, str] | None = None
    for gov in governor_order:
        units = stake.balance(gov)
        if units == 0:
            continue
        announcement = by_gov.get(gov)
        if announcement is None:
            raise LeaderElectionError(f"staked governor {gov!r} did not announce")
        _verify_announcement(im, announcement, round_number, index_of[gov], units)
        for output in announcement.outputs:
            candidate = (output.as_int(), gov)
            if best is None or candidate < best:
                best = candidate
    assert best is not None  # guaranteed by stake.total > 0 + loop above
    return best[1]


@dataclass
class LeaderElection:
    """Convenience driver: run a whole election locally (no network).

    Used by unit tests, the statistical experiments (E10), and any
    context where the full message exchange is irrelevant.
    """

    im: IdentityManager
    governor_order: list[str]

    def run(self, stake: StakeLedger, round_number: int) -> str:
        """Announce for every staked governor and elect."""
        announcements = []
        for j, gov in enumerate(self.governor_order):
            units = stake.balance(gov)
            if units > 0:
                key = self.im.record(gov).key
                announcements.append(announce_stakes(key, round_number, j, units))
        return elect_leader(
            self.im, stake, self.governor_order, round_number, announcements
        )
