"""repro — reproduction of "An Efficient Permissioned Blockchain with
Provable Reputation Mechanism" (Chen et al., ICDCS 2021 poster;
arXiv:2002.06852).

A three-tier permissioned blockchain (providers / collectors /
governors) with a provable multiplicative-weights reputation mechanism:
governors skip verification of invalid-labeled transactions with a
tunable probability ``f`` and still suffer only ``O(sqrt(T))`` more loss
than the best collector (Theorem 1).

Quickstart::

    from repro import ProtocolEngine, ProtocolParams, Topology
    from repro.workloads import BernoulliWorkload

    topo = Topology.regular(l=16, n=8, m=4, r=4)
    engine = ProtocolEngine(topo, ProtocolParams(f=0.5))
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=7)
    for _ in range(10):
        engine.run_round(workload.take(32))
    engine.finalize()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    DEFAULT_PARAMS,
    ProtocolEngine,
    ProtocolParams,
    ReputationBook,
    ReputationGame,
    gamma_for,
    theorem1_bound,
    tuned_beta,
)
from repro.crypto import IdentityManager, Role
from repro.ledger import Block, Label, Ledger
from repro.network import Topology

__version__ = "1.0.0"

__all__ = [
    "Block",
    "DEFAULT_PARAMS",
    "IdentityManager",
    "Label",
    "Ledger",
    "ProtocolEngine",
    "ProtocolParams",
    "ReputationBook",
    "ReputationGame",
    "Role",
    "Topology",
    "__version__",
    "gamma_for",
    "theorem1_bound",
    "tuned_beta",
]
