"""Insurance underwriting on the protocol (Section 5.2).

Mapping, per the paper: **potential policyholders are providers** (their
application materials are transactions), **independent agents are
collectors** (verify and label the materials; their commission tempts
them to pass bad applications), **insurance companies are governors**.

The domain substrate: each policyholder has a true health record in a
hidden registry; an application *declares* a record, and the transaction
is valid iff the declaration matches the registry (no concealed medical
history, correct smoker status, ...).  The signature binds the
policyholder to his declaration — "he cannot deny the facts" — and the
reputation mechanism exposes agents that systematically whitewash bad
applications (:class:`CommissionBiasedAgent`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.agents.behaviors import CollectorBehavior, HonestBehavior
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import CheckStatus, Label
from repro.network.topology import Topology
from repro.workloads.generator import TxSpec

__all__ = [
    "HealthRecord",
    "Application",
    "CommissionBiasedAgent",
    "InsuranceAlliance",
    "UnderwritingReport",
]


@dataclass(frozen=True)
class HealthRecord:
    """The registry's ground truth for one person."""

    age: int
    smoker: bool
    chronic_condition: bool
    prior_claims: int

    def as_dict(self) -> dict:
        """Hashable payload form."""
        return {
            "age": self.age,
            "smoker": self.smoker,
            "chronic_condition": self.chronic_condition,
            "prior_claims": self.prior_claims,
        }


@dataclass(frozen=True)
class Application:
    """A declared record submitted for underwriting."""

    applicant: str
    declared: HealthRecord

    def as_payload(self) -> dict:
        """Hashable payload form."""
        return {"applicant": self.applicant, "declared": self.declared.as_dict()}


@dataclass
class CommissionBiasedAgent:
    """The paper's dishonest independent agent.

    His commission depends on policies sold, so he *whitewashes*: an
    application he knows to be invalid is labeled +1 with probability
    ``whitewash_rate``.  Valid applications are always labeled honestly
    (there is no commission in rejecting good business).  This is a
    *directional* misreporter — a strictly harder case than symmetric
    noise for naive majority schemes, and exactly what the reputation
    mechanism's unchecked-transaction entries punish.
    """

    whitewash_rate: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.whitewash_rate <= 1.0:
            raise ConfigurationError("whitewash_rate must be in [0, 1]")

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        if not true_valid and rng.random() < self.whitewash_rate:
            return Label.VALID
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


@dataclass(frozen=True)
class UnderwritingReport:
    """Domain metrics for an alliance run."""

    applications: int
    honest_applications: int
    fraudulent_applications: int
    fraud_on_chain_as_valid: int
    fraud_caught: int
    honest_agent_revenue: float
    biased_agent_revenue: float

    @property
    def fraud_leakage(self) -> float:
        """Fraction of fraudulent applications that got through as valid."""
        return (
            self.fraud_on_chain_as_valid / self.fraudulent_applications
            if self.fraudulent_applications
            else 0.0
        )


@dataclass
class InsuranceAlliance:
    """A consortium of insurers running the protocol for underwriting.

    Args:
        n_applicants / n_agents / n_companies: Population sizes.
        agents_per_applicant: Link degree ``r``.
        biased_agents: agent id -> behaviour (e.g. CommissionBiasedAgent).
        fraud_rate: Probability an applicant misdeclares.
        seed: Master seed.
    """

    n_applicants: int = 20
    n_agents: int = 10
    n_companies: int = 4
    agents_per_applicant: int = 5
    biased_agents: Mapping[str, CollectorBehavior] = field(default_factory=dict)
    params: ProtocolParams = field(default_factory=ProtocolParams)
    fraud_rate: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraud_rate <= 1.0:
            raise ConfigurationError("fraud_rate must be in [0, 1]")
        self.topology = Topology.regular(
            l=self.n_applicants,
            n=self.n_agents,
            m=self.n_companies,
            r=self.agents_per_applicant,
        )
        behaviors = {c: HonestBehavior() for c in self.topology.collectors}
        unknown = set(self.biased_agents) - set(self.topology.collectors)
        if unknown:
            raise ConfigurationError(f"unknown biased agents: {sorted(unknown)}")
        behaviors.update(self.biased_agents)
        self.engine = ProtocolEngine(
            self.topology, self.params, behaviors=behaviors, seed=self.seed
        )
        self._rng = np.random.default_rng(self.seed + 7)
        self.registry: dict[str, HealthRecord] = {
            p: self._random_record() for p in self.topology.providers
        }
        self._applications = 0
        self._fraudulent = 0
        self._fraud_as_valid = 0
        self._fraud_caught = 0

    def _random_record(self) -> HealthRecord:
        return HealthRecord(
            age=int(self._rng.integers(18, 80)),
            smoker=bool(self._rng.random() < 0.3),
            chronic_condition=bool(self._rng.random() < 0.2),
            prior_claims=int(self._rng.poisson(0.5)),
        )

    def _declare(self, applicant: str) -> tuple[Application, bool]:
        """An application, possibly fraudulent; returns (app, is_valid)."""
        truth = self.registry[applicant]
        if self._rng.random() < self.fraud_rate:
            # Misdeclare the costliest attribute: hide conditions/claims.
            declared = HealthRecord(
                age=truth.age,
                smoker=False,
                chronic_condition=False,
                prior_claims=0,
            )
            is_valid = declared == truth  # fraud only if something was hidden
        else:
            declared = truth
            is_valid = True
        return Application(applicant=applicant, declared=declared), is_valid

    def run_round(self, applications_per_round: int = 10) -> None:
        """One underwriting round through the full protocol."""
        applicants = list(self.topology.providers)
        specs = []
        frauds: set[int] = set()
        for i in range(applications_per_round):
            applicant = applicants[(self._applications + i) % len(applicants)]
            application, is_valid = self._declare(applicant)
            if not is_valid:
                frauds.add(i)
            specs.append(
                TxSpec(
                    provider=applicant,
                    payload=application.as_payload(),
                    is_valid=is_valid,
                )
            )
        self._applications += len(specs)
        self._fraudulent += len(frauds)
        result = self.engine.run_round(specs)
        # Count fraud dispositions from the block: a fraudulent
        # application recorded as checked-valid leaked through (cannot
        # happen with a truthful oracle); recorded invalid = caught.
        fraud_ids = {
            rec.tx.tx_id
            for rec in result.block.tx_list
            if not self.engine.oracle.validate(rec.tx)
        }
        for rec in result.block.tx_list:
            if rec.tx.tx_id not in fraud_ids:
                continue
            if rec.label is Label.VALID:
                self._fraud_as_valid += 1
            elif rec.status is not CheckStatus.UNCHECKED:
                self._fraud_caught += 1

    def report(self) -> UnderwritingReport:
        """Domain metrics so far (finalises the engine's loss books)."""
        self.engine.finalize()
        rewards = self.engine.metrics.rewards_paid
        biased = set(self.biased_agents)
        # Fraud caught also includes checked-and-discarded applications,
        # which never reach a block; derive from governor validations.
        caught_total = self._fraudulent - self._fraud_as_valid
        return UnderwritingReport(
            applications=self._applications,
            honest_applications=self._applications - self._fraudulent,
            fraudulent_applications=self._fraudulent,
            fraud_on_chain_as_valid=self._fraud_as_valid,
            fraud_caught=max(caught_total, 0),
            honest_agent_revenue=sum(
                v for c, v in rewards.items() if c not in biased
            ),
            biased_agent_revenue=sum(v for c, v in rewards.items() if c in biased),
        )
