"""Application domains: the Section-5 pair plus the streaming oracles.

Car-sharing and insurance are the paper's own use cases (materialized
populations on :class:`~repro.core.protocol.ProtocolEngine`); supply
chain, energy and ticketing are streaming-population domains on
:class:`~repro.streaming.session.StreamingSession`.
"""

from repro.apps.carsharing import (
    CarSharingMarket,
    GreedyDispatcher,
    MarketReport,
    RideRequest,
)
from repro.apps.energy import EnergyMarket, EnergyReport, EnergyTrade
from repro.apps.insurance import (
    Application,
    CommissionBiasedAgent,
    HealthRecord,
    InsuranceAlliance,
    UnderwritingReport,
)
from repro.apps.supplychain import (
    ProvenanceReport,
    ShipmentRecord,
    SupplyChainProvenance,
)
from repro.apps.ticketing import FlashSaleTicketing, TicketingReport, TicketOrder

__all__ = [
    "Application",
    "CarSharingMarket",
    "CommissionBiasedAgent",
    "EnergyMarket",
    "EnergyReport",
    "EnergyTrade",
    "FlashSaleTicketing",
    "GreedyDispatcher",
    "HealthRecord",
    "InsuranceAlliance",
    "MarketReport",
    "ProvenanceReport",
    "RideRequest",
    "ShipmentRecord",
    "SupplyChainProvenance",
    "TicketOrder",
    "TicketingReport",
    "UnderwritingReport",
]
