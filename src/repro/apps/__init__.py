"""Section-5 application domains: car-sharing and insurance."""

from repro.apps.carsharing import (
    CarSharingMarket,
    GreedyDispatcher,
    MarketReport,
    RideRequest,
)
from repro.apps.insurance import (
    Application,
    CommissionBiasedAgent,
    HealthRecord,
    InsuranceAlliance,
    UnderwritingReport,
)

__all__ = [
    "Application",
    "CarSharingMarket",
    "CommissionBiasedAgent",
    "GreedyDispatcher",
    "HealthRecord",
    "InsuranceAlliance",
    "MarketReport",
    "RideRequest",
    "UnderwritingReport",
]
