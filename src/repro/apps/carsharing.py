"""Car-sharing market on the protocol (Section 5.1).

Mapping, per the paper: **users are providers** (ride requests and
payments are transactions), **drivers are collectors** (label +1 when
willing/able to serve, -1 otherwise), **schedulers are governors**
(decide assignments, pack blocks; the elected leader's block tells every
user and driver what to do; unassigned requests are re-sent later).

The domain substrate is a grid city: users and drivers have coordinates,
a request is *valid* when it is well-formed and affordable (the payment
check), and the scheduler assigns each valid request to the nearest
driver that labeled it +1.  Dishonest drivers — who claim requests they
will not serve, or deny requests to starve rivals — are exactly the
misreporting collectors the reputation mechanism demotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.agents.behaviors import CollectorBehavior, HonestBehavior
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import CheckStatus, Label
from repro.network.topology import Topology
from repro.workloads.generator import TxSpec

__all__ = ["RideRequest", "GreedyDispatcher", "CarSharingMarket", "MarketReport"]


@dataclass(frozen=True)
class RideRequest:
    """One ride request payload.

    ``funded`` models the payment check: an unfunded request is an
    invalid transaction the alliance must catch.
    """

    rider: str
    pickup: tuple[float, float]
    dropoff: tuple[float, float]
    fare: float
    funded: bool

    @property
    def distance(self) -> float:
        """Euclidean trip length."""
        return math.dist(self.pickup, self.dropoff)

    def as_payload(self) -> dict:
        """Canonically hashable payload form."""
        return {
            "rider": self.rider,
            "pickup": list(self.pickup),
            "dropoff": list(self.dropoff),
            "fare": self.fare,
            "funded": self.funded,
        }


@dataclass
class GreedyDispatcher:
    """Nearest-willing-driver assignment over one block's valid requests.

    Drivers serve at most ``capacity`` rides per block; the dispatcher
    walks requests in block order and picks the closest driver that
    labeled the request +1 and has capacity left.
    """

    driver_positions: Mapping[str, tuple[float, float]]
    capacity: int = 4

    def assign(
        self, requests: Sequence[tuple[RideRequest, Mapping[str, Label]]]
    ) -> dict[int, str | None]:
        """Request index -> assigned driver (None if unassignable)."""
        load: dict[str, int] = {d: 0 for d in self.driver_positions}
        out: dict[int, str | None] = {}
        for idx, (request, labels) in enumerate(requests):
            willing = [
                d
                for d, lab in labels.items()
                if lab is Label.VALID and load.get(d, self.capacity) < self.capacity
            ]
            if not willing:
                out[idx] = None
                continue
            best = min(
                willing,
                key=lambda d: math.dist(self.driver_positions[d], request.pickup),
            )
            load[best] = load.get(best, 0) + 1
            out[idx] = best
        return out


@dataclass(frozen=True)
class MarketReport:
    """Domain metrics for a market run."""

    requests_offered: int
    requests_on_chain: int
    requests_assigned: int
    mean_pickup_distance: float
    honest_driver_revenue: float
    dishonest_driver_revenue: float

    @property
    def assignment_rate(self) -> float:
        """Assigned / on-chain requests."""
        return (
            self.requests_assigned / self.requests_on_chain
            if self.requests_on_chain
            else 0.0
        )


@dataclass
class CarSharingMarket:
    """A full car-sharing deployment of the protocol.

    Args:
        n_users / n_drivers / n_schedulers: Population sizes (users are
            providers, drivers collectors, schedulers governors).
        drivers_per_user: The link degree ``r``.
        dishonest_drivers: driver id -> behaviour overriding honest.
        city_size: Side of the square city grid.
        unfunded_rate: Fraction of requests that fail the payment check.
        seed: Master seed.
    """

    n_users: int = 24
    n_drivers: int = 8
    n_schedulers: int = 4
    drivers_per_user: int = 4
    dishonest_drivers: Mapping[str, CollectorBehavior] = field(default_factory=dict)
    params: ProtocolParams = field(default_factory=ProtocolParams)
    city_size: float = 10.0
    unfunded_rate: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.unfunded_rate <= 1.0:
            raise ConfigurationError("unfunded_rate must be in [0, 1]")
        self.topology = Topology.regular(
            l=self.n_users, n=self.n_drivers, m=self.n_schedulers, r=self.drivers_per_user
        )
        behaviors = {c: HonestBehavior() for c in self.topology.collectors}
        unknown = set(self.dishonest_drivers) - set(self.topology.collectors)
        if unknown:
            raise ConfigurationError(f"unknown dishonest drivers: {sorted(unknown)}")
        behaviors.update(self.dishonest_drivers)
        self.engine = ProtocolEngine(
            self.topology, self.params, behaviors=behaviors, seed=self.seed
        )
        self._rng = np.random.default_rng(self.seed + 1)
        self.driver_positions = {
            d: (
                float(self._rng.uniform(0, self.city_size)),
                float(self._rng.uniform(0, self.city_size)),
            )
            for d in self.topology.collectors
        }
        self.dispatcher = GreedyDispatcher(self.driver_positions)
        self._assigned = 0
        self._on_chain = 0
        self._offered = 0
        self._distance_sum = 0.0

    def _make_request(self, rider: str) -> RideRequest:
        pickup = (
            float(self._rng.uniform(0, self.city_size)),
            float(self._rng.uniform(0, self.city_size)),
        )
        dropoff = (
            float(self._rng.uniform(0, self.city_size)),
            float(self._rng.uniform(0, self.city_size)),
        )
        funded = bool(self._rng.random() >= self.unfunded_rate)
        fare = 2.0 + 1.5 * math.dist(pickup, dropoff)
        return RideRequest(
            rider=rider, pickup=pickup, dropoff=dropoff, fare=round(fare, 2), funded=funded
        )

    def run_round(self, requests_per_round: int = 16) -> None:
        """One market round: requests -> labels -> block -> dispatch."""
        riders = list(self.topology.providers)
        specs = []
        for i in range(requests_per_round):
            rider = riders[i % len(riders)]
            request = self._make_request(rider)
            specs.append(
                TxSpec(
                    provider=rider,
                    payload=request.as_payload(),
                    is_valid=request.funded,
                )
            )
        self._offered += len(specs)
        result = self.engine.run_round(specs)
        # Driver willingness: the actual labels each driver uploaded.
        willingness: dict[str, dict[str, Label]] = {}
        for upload in result.uploads:
            willingness.setdefault(upload.tx.tx_id, {})[upload.collector] = upload.label
        # Dispatch over the block's on-chain valid/unchecked requests.
        dispatchable: list[tuple[RideRequest, Mapping[str, Label]]] = []
        for rec in result.block.tx_list:
            if rec.label is Label.INVALID and rec.status is CheckStatus.UNCHECKED:
                continue  # provisionally invalid: rescheduled after argue
            payload = rec.tx.body.payload
            request = RideRequest(
                rider=payload["rider"],
                pickup=tuple(payload["pickup"]),
                dropoff=tuple(payload["dropoff"]),
                fare=payload["fare"],
                funded=payload["funded"],
            )
            labels = willingness.get(rec.tx.tx_id, {})
            if not labels:
                continue  # nobody uploaded (argue-requeued records)
            dispatchable.append((request, labels))
        assignment = self.dispatcher.assign(dispatchable)
        for idx, driver in assignment.items():
            self._on_chain += 1
            if driver is not None:
                self._assigned += 1
                self._distance_sum += math.dist(
                    self.driver_positions[driver], dispatchable[idx][0].pickup
                )

    def report(self) -> MarketReport:
        """Domain metrics so far (finalises the engine's loss books)."""
        self.engine.finalize()
        rewards = self.engine.metrics.rewards_paid
        dishonest = set(self.dishonest_drivers)
        honest_rev = sum(v for c, v in rewards.items() if c not in dishonest)
        dishonest_rev = sum(v for c, v in rewards.items() if c in dishonest)
        return MarketReport(
            requests_offered=self._offered,
            requests_on_chain=self._on_chain,
            requests_assigned=self._assigned,
            mean_pickup_distance=(
                self._distance_sum / self._assigned if self._assigned else 0.0
            ),
            honest_driver_revenue=honest_rev,
            dishonest_driver_revenue=dishonest_rev,
        )
