"""Flash-sale ticketing on the streaming protocol.

Mapping: **buyers are providers** (each purchase attempt is a
transaction), **ticketing gateways are collectors** (label +1 when the
purchase passes the bot/identity screen, -1 otherwise), **the event
consortium's clearing nodes are governors**.  A purchase is *valid*
when it comes from a real buyer within the per-person limit; bot
purchases are the invalid transactions.

Load is **extremely bursty**: a quiet trickle punctuated by on-sale
spikes an order of magnitude above ``b_limit``, driven by
:class:`~repro.workloads.arrivals.BurstyArrivals`.  Spikes spill into
the session's backlog and drain over subsequent rounds — the open-loop
behaviour the ``stream_backlog`` gauge measures.  Buyer selection is
uniform over the universe: a flash sale is exactly the workload where
most arrivals are first-time identities, so this preset maximises
instantiation churn.

The adversary mix is a **scalper cartel**: gateways sharing one
:class:`~repro.byzantine.strategies.CartelPlan` conceal the victim
buyer's purchases (denial-of-ticket), while scalper-bot gateways
misreport to wave their own bots through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.agents.behaviors import CollectorBehavior, MisreportBehavior
from repro.byzantine.strategies import CartelPlan, ColludingCollectorBehavior
from repro.core.params import ProtocolParams
from repro.streaming.session import StreamingSession
from repro.streaming.universe import VirtualUniverse
from repro.streaming.workload import StreamingWorkload
from repro.workloads.arrivals import BurstyArrivals
from repro.workloads.generator import TxSpec

__all__ = ["TicketOrder", "FlashSaleTicketing", "TicketingReport"]


@dataclass(frozen=True)
class TicketOrder:
    """One purchase-attempt payload."""

    buyer: str
    event: str
    quantity: int
    human: bool

    def as_payload(self) -> dict:
        """Canonically hashable payload form."""
        return {
            "buyer": self.buyer,
            "event": self.event,
            "quantity": self.quantity,
            "human": self.human,
        }


@dataclass(frozen=True)
class TicketingReport:
    """Domain metrics for a flash-sale run."""

    orders_committed: int
    tickets_sold: int
    bot_rate: float
    peak_backlog: int
    peak_active_buyers: int
    victim_orders_on_chain: int
    cartel_suppressions: int
    audit_clean: bool


@dataclass
class FlashSaleTicketing:
    """A streaming flash-sale deployment.

    Args:
        universe: Registered (virtual) buyer population.
        n_gateways / n_clearers: Collector / governor counts.
        gateways_per_buyer: Link degree ``r``.
        trickle_rate / spike_rate: Background and on-sale arrival rates.
        victim: Buyer index the scalper cartel acts against.
        cartel / scalper_bots: Gateway indices by conduct.
        seed: Master seed.
    """

    universe: int = 100_000
    n_gateways: int = 8
    n_clearers: int = 4
    gateways_per_buyer: int = 4
    trickle_rate: float = 6.0
    spike_rate: float = 120.0
    p_spike: float = 0.15
    p_spike_end: float = 0.4
    victim: int = 0
    cartel: tuple[int, ...] = (2, 3, 4)
    scalper_bots: tuple[int, ...] = (6, 7)
    params: ProtocolParams = field(default_factory=lambda: ProtocolParams(f=0.5, b_limit=48))
    seed: int = 0

    def __post_init__(self) -> None:
        self.virtual = VirtualUniverse(
            universe=self.universe,
            n=self.n_gateways,
            m=self.n_clearers,
            r=self.gateways_per_buyer,
        )
        self.victim_id = f"p{self.victim}"
        self.plan = CartelPlan(target_provider=self.victim_id, mode="conceal")
        self._cartel_members: list[ColludingCollectorBehavior] = []
        self._committed = 0
        self._tickets = 0
        self._bots = 0
        self._victim_on_chain = 0
        self.workload = StreamingWorkload(
            self.virtual,
            arrivals=BurstyArrivals(
                self.trickle_rate,
                self.spike_rate,
                p_burst=self.p_spike,
                p_end=self.p_spike_end,
                seed=self.seed,
            ),
            validity="bernoulli",
            selection="uniform",
            seed=self.seed,
            p_valid=0.75,
            spec_hook=self._enrich,
        )
        self.session = StreamingSession(
            self.virtual,
            self.params,
            workload=self.workload,
            behaviors=self.adversary_mix(),
            seed=self.seed,
            retirement_rounds=4,  # flash buyers churn fast
        )

    def adversary_mix(self) -> Mapping[str, CollectorBehavior]:
        """Scalper cartel (one shared plan) plus misreporting bot lanes."""
        collectors = self.virtual.collectors
        mix: dict[str, CollectorBehavior] = {}
        for i in self.cartel:
            member = ColludingCollectorBehavior(self.plan)
            self._cartel_members.append(member)
            mix[collectors[i]] = member
        for i in self.scalper_bots:
            mix[collectors[i]] = MisreportBehavior(0.6)
        return mix

    def _enrich(
        self, spec: TxSpec, index: int, rng: np.random.Generator
    ) -> TxSpec:
        """Attach the order payload; every ~40th arrival is the victim.

        The cartel needs its target to actually appear in the stream, so
        a slice of arrivals is redirected to the victim buyer — the
        superfan refreshing the sale page all day.
        """
        provider = spec.provider
        if index % 40 == 7:
            provider = self.victim_id
        order = TicketOrder(
            buyer=provider,
            event="onsale-0",
            quantity=1 + int(rng.integers(4)),
            human=spec.is_valid,
        )
        return TxSpec(
            provider=provider,
            payload=order.as_payload(),
            is_valid=spec.is_valid,
        )

    def run(self, rounds: int) -> None:
        """Drive the streaming session for ``rounds`` rounds."""
        for _ in range(rounds):
            block = self.session.run_round(
                self.workload.for_round(self.session.round_number + 1)
            )
            for rec in block.tx_list:
                payload = rec.tx.body.payload
                self._committed += 1
                if payload.get("buyer") == self.victim_id:
                    self._victim_on_chain += 1
                if payload.get("human", True):
                    self._tickets += payload.get("quantity", 0)
                else:
                    self._bots += 1

    def report(self) -> TicketingReport:
        """Domain metrics so far (finalises the session's audit)."""
        self.session.finalize()
        return TicketingReport(
            orders_committed=self._committed,
            tickets_sold=self._tickets,
            bot_rate=(self._bots / self._committed if self._committed else 0.0),
            peak_backlog=self.session.metrics.peak_backlog,
            peak_active_buyers=self.session.metrics.peak_active,
            victim_orders_on_chain=self._victim_on_chain,
            cartel_suppressions=sum(m.suppressed for m in self._cartel_members),
            audit_clean=(
                self.session.audit_report is None
                or not self.session.audit_report.violations
            ),
        )
