"""Peer-to-peer energy trading on the streaming protocol.

Mapping: **prosumers are providers** (each metered trade — an export to
or an import from the grid — is a transaction), **meter aggregators are
collectors** (label +1 when the reading is plausible against the feeder
telemetry, -1 otherwise), **the distribution consortium's settlement
nodes are governors**.  A trade is *valid* when the meter reading is
genuine; tampered readings (inflated exports, under-reported imports)
are the invalid transactions.

Load is **diurnal**: arrivals follow a sinusoidal day cycle, and the
flow *direction* swings with the same phase — daylight rounds are
export-heavy (solar), night rounds import-heavy — so reputations are
learned under bidirectional, time-varying traffic.

The adversary mix models **tampering aggregators**: some certify
inflated readings for a kickback (misreporting), one drops inconvenient
readings (concealing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.agents.behaviors import CollectorBehavior, ConcealBehavior, MisreportBehavior
from repro.core.params import ProtocolParams
from repro.streaming.session import StreamingSession
from repro.streaming.universe import VirtualUniverse
from repro.streaming.workload import StreamingWorkload
from repro.workloads.arrivals import DiurnalArrivals
from repro.workloads.generator import TxSpec

__all__ = ["EnergyTrade", "EnergyMarket", "EnergyReport"]


@dataclass(frozen=True)
class EnergyTrade:
    """One metered trade payload."""

    prosumer: str
    direction: str  # "export" | "import"
    kwh: float
    price_per_kwh: float
    genuine: bool

    def as_payload(self) -> dict:
        """Canonically hashable payload form."""
        return {
            "prosumer": self.prosumer,
            "direction": self.direction,
            "kwh": self.kwh,
            "price_per_kwh": self.price_per_kwh,
            "genuine": self.genuine,
        }


@dataclass(frozen=True)
class EnergyReport:
    """Domain metrics for an energy-market run."""

    trades_committed: int
    exported_kwh: float
    imported_kwh: float
    tamper_rate: float
    peak_active_prosumers: int
    retirements: int
    audit_clean: bool


@dataclass
class EnergyMarket:
    """A streaming energy-trading deployment.

    Args:
        universe: Registered (virtual) prosumer population.
        n_aggregators / n_settlers: Collector / governor counts.
        aggregators_per_prosumer: Link degree ``r``.
        base_rate / day_period / amplitude: The diurnal arrival cycle.
        tamper_misreport / tamper_conceal: Aggregator indices in the
            tampering ring, by conduct.
        seed: Master seed.
    """

    universe: int = 10_000
    n_aggregators: int = 8
    n_settlers: int = 4
    aggregators_per_prosumer: int = 4
    base_rate: float = 20.0
    day_period: int = 12
    amplitude: float = 0.7
    tamper_misreport: tuple[int, ...] = (5, 6)
    tamper_conceal: tuple[int, ...] = (7,)
    params: ProtocolParams = field(default_factory=lambda: ProtocolParams(f=0.5, b_limit=64))
    seed: int = 0

    def __post_init__(self) -> None:
        self.virtual = VirtualUniverse(
            universe=self.universe,
            n=self.n_aggregators,
            m=self.n_settlers,
            r=self.aggregators_per_prosumer,
        )
        self._exported = 0.0
        self._imported = 0.0
        self._committed = 0
        self._tampered = 0
        self.workload = StreamingWorkload(
            self.virtual,
            arrivals=DiurnalArrivals(
                self.base_rate,
                period=self.day_period,
                amplitude=self.amplitude,
                seed=self.seed,
            ),
            validity="bernoulli",
            selection="uniform",
            seed=self.seed,
            p_valid=0.85,
            spec_hook=self._enrich,
        )
        self.session = StreamingSession(
            self.virtual,
            self.params,
            workload=self.workload,
            behaviors=self.adversary_mix(),
            seed=self.seed,
            retirement_rounds=self.day_period,
        )

    def adversary_mix(self) -> Mapping[str, CollectorBehavior]:
        """The tampering aggregators' behaviours."""
        collectors = self.virtual.collectors
        mix: dict[str, CollectorBehavior] = {}
        for i in self.tamper_misreport:
            mix[collectors[i]] = MisreportBehavior(0.5)
        for i in self.tamper_conceal:
            mix[collectors[i]] = ConcealBehavior(0.4)
        return mix

    def _phase(self) -> float:
        """Daylight fraction for the round currently being generated."""
        round_number = self.session.round_number + 1 if hasattr(self, "session") else 1
        return math.sin(
            2.0 * math.pi * (round_number % self.day_period) / self.day_period
        )

    def _enrich(
        self, spec: TxSpec, index: int, rng: np.random.Generator
    ) -> TxSpec:
        """Attach direction (diurnal-phase-biased) and meter reading."""
        daylight = self._phase()
        p_export = 0.5 + 0.4 * daylight  # day: export-heavy; night: imports
        direction = "export" if rng.random() < p_export else "import"
        kwh = round(float(rng.uniform(0.5, 8.0)), 3)
        trade = EnergyTrade(
            prosumer=spec.provider,
            direction=direction,
            kwh=kwh,
            price_per_kwh=round(0.1 + 0.05 * (1.0 - daylight), 4),
            genuine=spec.is_valid,
        )
        return TxSpec(
            provider=spec.provider,
            payload=trade.as_payload(),
            is_valid=spec.is_valid,
        )

    def run(self, rounds: int) -> None:
        """Drive the streaming session for ``rounds`` rounds."""
        for _ in range(rounds):
            block = self.session.run_round(
                self.workload.for_round(self.session.round_number + 1)
            )
            for rec in block.tx_list:
                payload = rec.tx.body.payload
                self._committed += 1
                if not payload.get("genuine", True):
                    self._tampered += 1
                elif payload.get("direction") == "export":
                    self._exported += payload.get("kwh", 0.0)
                else:
                    self._imported += payload.get("kwh", 0.0)

    def report(self) -> EnergyReport:
        """Domain metrics so far (finalises the session's audit)."""
        self.session.finalize()
        return EnergyReport(
            trades_committed=self._committed,
            exported_kwh=round(self._exported, 3),
            imported_kwh=round(self._imported, 3),
            tamper_rate=(
                self._tampered / self._committed if self._committed else 0.0
            ),
            peak_active_prosumers=self.session.metrics.peak_active,
            retirements=self.session.metrics.retirements,
            audit_clean=(
                self.session.audit_report is None
                or not self.session.audit_report.violations
            ),
        )
