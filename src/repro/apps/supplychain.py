"""Supply-chain provenance on the streaming protocol.

Mapping: **suppliers are providers** (each shipment lot is a
transaction carrying its chain of custody), **certification bureaus are
collectors** (label +1 when the provenance documents check out, -1
otherwise), **consortium auditors are governors** (screen, pack,
arbitrate argues).  A shipment is *valid* when its certificate chain is
genuine; counterfeit lots — injected by suppliers with poor controls —
are the invalid transactions the alliance must catch.

Every shipment names a **consignee**: the next custodian in the
multi-hop chain, carried in :attr:`TxSpec.counterparty`.  On a sharded
deployment these settle as cross-shard receipts (the consignee's home
shard commits the receipt); the flat streaming session records them in
the payload, so the same workload exercises both paths.

The adversary mix is a **counterfeit-laundering ring**: a slice of
bureaus that certifies fakes (misreporting) and a slice that sits on
genuine paperwork to starve rivals (concealing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.agents.behaviors import CollectorBehavior, ConcealBehavior, MisreportBehavior
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.network.topology import provider_id
from repro.streaming.session import StreamingSession
from repro.streaming.universe import VirtualUniverse
from repro.streaming.workload import StreamingWorkload
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.generator import TxSpec

__all__ = ["ShipmentRecord", "SupplyChainProvenance", "ProvenanceReport"]


@dataclass(frozen=True)
class ShipmentRecord:
    """One shipment lot's provenance payload."""

    lot: str
    origin: str
    hops: tuple[str, ...]
    consignee: str
    certified: bool

    def as_payload(self) -> dict:
        """Canonically hashable payload form."""
        return {
            "lot": self.lot,
            "origin": self.origin,
            "hops": list(self.hops),
            "consignee": self.consignee,
            "certified": self.certified,
        }


@dataclass(frozen=True)
class ProvenanceReport:
    """Domain metrics for a provenance run."""

    shipments_committed: int
    counterfeit_rate: float
    mean_chain_hops: float
    distinct_suppliers: int
    peak_active_suppliers: int
    audit_clean: bool


@dataclass
class SupplyChainProvenance:
    """A streaming supply-chain deployment.

    Args:
        universe: Registered (virtual) supplier population.
        n_bureaus / n_auditors: Collector / governor counts.
        bureaus_per_supplier: Link degree ``r``.
        arrival_rate: Poisson lots offered per round.
        max_hops: Longest custody chain (2..max_hops custodians).
        ring_misreport / ring_conceal: Bureau indices in the laundering
            ring, by conduct.
        seed: Master seed.
    """

    universe: int = 10_000
    n_bureaus: int = 8
    n_auditors: int = 4
    bureaus_per_supplier: int = 4
    arrival_rate: float = 24.0
    max_hops: int = 4
    ring_misreport: tuple[int, ...] = (2, 3)
    ring_conceal: tuple[int, ...] = (4,)
    params: ProtocolParams = field(default_factory=lambda: ProtocolParams(f=0.5, b_limit=64))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_hops < 2:
            raise ConfigurationError(f"max_hops must be >= 2, got {self.max_hops}")
        self.virtual = VirtualUniverse(
            universe=self.universe,
            n=self.n_bureaus,
            m=self.n_auditors,
            r=self.bureaus_per_supplier,
        )
        self._hops_sum = 0
        self._committed = 0
        self._counterfeit = 0
        self.workload = StreamingWorkload(
            self.virtual,
            arrivals=PoissonArrivals(self.arrival_rate, seed=self.seed),
            validity="per_provider",
            selection="uniform",
            seed=self.seed,
            alpha=9.0,
            beta=1.5,
            spec_hook=self._enrich,
        )
        self.session = StreamingSession(
            self.virtual,
            self.params,
            workload=self.workload,
            behaviors=self.adversary_mix(),
            seed=self.seed,
            retirement_rounds=6,
        )

    def adversary_mix(self) -> Mapping[str, CollectorBehavior]:
        """The counterfeit-laundering ring's bureau behaviours."""
        collectors = self.virtual.collectors
        mix: dict[str, CollectorBehavior] = {}
        for i in self.ring_misreport:
            mix[collectors[i]] = MisreportBehavior(0.6)
        for i in self.ring_conceal:
            mix[collectors[i]] = ConcealBehavior(0.5)
        return mix

    def _enrich(
        self, spec: TxSpec, index: int, rng: np.random.Generator
    ) -> TxSpec:
        """Attach the custody chain and consignee to a raw spec."""
        hop_count = 2 + int(rng.integers(self.max_hops - 1))
        hops = tuple(
            provider_id(int(rng.integers(self.universe))) for _ in range(hop_count)
        )
        consignee = hops[-1]
        record = ShipmentRecord(
            lot=f"lot-{index}",
            origin=spec.provider,
            hops=hops,
            consignee=consignee,
            certified=spec.is_valid,
        )
        self._hops_sum += hop_count
        return TxSpec(
            provider=spec.provider,
            payload=record.as_payload(),
            is_valid=spec.is_valid,
            counterparty=consignee,
        )

    def run(self, rounds: int) -> None:
        """Drive the streaming session for ``rounds`` rounds."""
        for _ in range(rounds):
            block = self.session.run_round(
                self.workload.for_round(self.session.round_number + 1)
            )
            for rec in block.tx_list:
                self._committed += 1
                if not rec.tx.body.payload.get("certified", True):
                    self._counterfeit += 1

    def report(self) -> ProvenanceReport:
        """Domain metrics so far (finalises the session's audit)."""
        self.session.finalize()
        offered = self.workload.emitted
        return ProvenanceReport(
            shipments_committed=self._committed,
            counterfeit_rate=(
                self._counterfeit / self._committed if self._committed else 0.0
            ),
            mean_chain_hops=(self._hops_sum / offered if offered else 0.0),
            distinct_suppliers=self.session.metrics.instantiations,
            peak_active_suppliers=self.session.metrics.peak_active,
            audit_clean=(
                self.session.audit_report is None
                or not self.session.audit_report.violations
            ),
        )
