"""Command-line interface: run protocol experiments without writing code.

Subcommands:

* ``run`` — execute the full three-tier protocol and print the
  per-governor summary plus the five property checks;
* ``regret`` — play the Theorem-1 reputation game against a named
  adversary mix and print loss / S_min / bound rows;
* ``sweep-f`` — the E5 efficiency table over an f grid;
* ``baselines`` — the E8 policy comparison on one adversary mix;
* ``scenario`` — run a named preset from the scenario registry;
* ``shard`` — run an S-shard deployment (named preset or explicit
  shape) and print per-shard + aggregate statistics;
* ``durable`` — run a durable-ledger preset committing every block to
  an on-disk segment log (the kill-restart chaos harness drives this
  as a subprocess and SIGKILLs it mid-round);
* ``recover`` — replay and verify a durable ledger directory, printing
  the recovery report without starting an engine;
* ``serve`` — run a custodian peer for the real-socket transport: it
  CRC-validates and acknowledges conveyed frames and answers
  heartbeats (the localhost-cluster harness spawns ``n`` of these; see
  DESIGN.md, "Transport backend").

Example::

    python -m repro run --rounds 20 --batch 32 --f 0.6 --misreporters 2
    python -m repro regret --horizon 2000 --mix zoo
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    HonestBehavior,
    MisreportBehavior,
    SleeperBehavior,
)
from repro.analysis.metrics import SweepTable, summarize_run
from repro.analysis.reporting import format_sweep, format_table
from repro.baselines import (
    CheckAllPolicy,
    CheckNonePolicy,
    MajorityVotePolicy,
    PolicySimulation,
    ReputationPolicy,
    UniformSelectionPolicy,
)
from repro.core.game import ReputationGame
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.ledger.properties import check_all_properties
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload

__all__ = ["main", "build_parser"]

#: Named adversary mixes for the game subcommands (r = 8 collectors).
MIXES = {
    "honest": lambda: [HonestBehavior()] * 8,
    "mild": lambda: [HonestBehavior()] * 6 + [MisreportBehavior(0.3)] * 2,
    "hostile": lambda: [HonestBehavior()] * 2 + [AlwaysInvertBehavior()] * 6,
    "sleepers": lambda: [HonestBehavior()] * 2
    + [SleeperBehavior(150) for _ in range(6)],
    "zoo": lambda: [
        HonestBehavior(),
        HonestBehavior(),
        MisreportBehavior(0.4),
        ConcealBehavior(0.4),
        AlwaysInvertBehavior(),
        AlwaysInvertBehavior(),
        MisreportBehavior(0.8),
        ConcealBehavior(0.8),
    ],
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Permissioned blockchain with provable reputation — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full protocol")
    run.add_argument("--providers", type=int, default=16)
    run.add_argument("--collectors", type=int, default=8)
    run.add_argument("--governors", type=int, default=4)
    run.add_argument("--r", type=int, default=4, help="collectors per provider")
    run.add_argument("--rounds", type=int, default=20)
    run.add_argument("--batch", type=int, default=32, help="transactions per round")
    run.add_argument("--f", type=float, default=0.5)
    run.add_argument("--p-valid", type=float, default=0.8)
    run.add_argument("--misreporters", type=int, default=0,
                     help="collectors flipped to MisreportBehavior(0.5)")
    run.add_argument("--seed", type=int, default=0)

    regret = sub.add_parser("regret", help="play the Theorem-1 game")
    regret.add_argument("--horizon", type=int, default=1000)
    regret.add_argument("--mix", choices=sorted(MIXES), default="zoo")
    regret.add_argument("--seeds", type=int, default=3)
    regret.add_argument("--beta", type=float, default=None,
                        help="fixed beta (default: tuned schedule)")

    sweep = sub.add_parser("sweep-f", help="E5 efficiency sweep")
    sweep.add_argument("--rounds", type=int, default=15)
    sweep.add_argument("--batch", type=int, default=24)
    sweep.add_argument("--seed", type=int, default=0)

    baselines = sub.add_parser("baselines", help="E8 policy comparison")
    baselines.add_argument("--mix", choices=sorted(MIXES), default="hostile")
    baselines.add_argument("--horizon", type=int, default=2000)
    baselines.add_argument("--f", type=float, default=0.7)
    baselines.add_argument("--seed", type=int, default=0)

    from repro.workloads.scenarios import scenario_names

    scenario = sub.add_parser("scenario", help="run a named scenario preset")
    scenario.add_argument("name", choices=scenario_names())
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--rounds", type=int, default=None,
                          help="override the preset's round count")

    from repro.workloads.scenarios import shard_scenario_names

    shard = sub.add_parser("shard", help="run an S-shard deployment")
    shard.add_argument("--preset", choices=shard_scenario_names(),
                       default="sharded-smoke",
                       help="named sharded scenario to run")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--rounds", type=int, default=None,
                       help="override the preset's super-round count")
    shard.add_argument("--workers", type=int, default=None,
                       help="run shard engines in this many worker "
                            "processes (default: serial in-process; "
                            "ledgers are bit-identical either way)")

    from repro.workloads.scenarios import durable_scenario_names

    durable = sub.add_parser(
        "durable", help="run a durable-ledger preset against a storage dir"
    )
    durable.add_argument("--preset", choices=durable_scenario_names(),
                         default="durable-smoke")
    durable.add_argument("--dir", required=True,
                         help="ledger directory (segments + checkpoints)")
    durable.add_argument("--seed", type=int, default=0)
    durable.add_argument("--rounds", type=int, default=None,
                         help="override the preset's round count")
    durable.add_argument("--round-delay", type=float, default=0.0,
                         help="wall-clock sleep after each round (lets a "
                              "chaos harness land a SIGKILL mid-run)")

    recover = sub.add_parser(
        "recover", help="verify a durable ledger directory and print the report"
    )
    recover.add_argument("--dir", required=True)

    from repro.streaming.scenarios import stream_scenario_names

    stream = sub.add_parser(
        "stream", help="run a streaming-population preset (virtual providers)"
    )
    stream.add_argument("--preset", choices=stream_scenario_names(),
                        default="stream-smoke")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--rounds", type=int, default=None,
                        help="override the preset's round count")
    stream.add_argument("--universe", type=int, default=None,
                        help="override the registered (virtual) population")

    serve = sub.add_parser(
        "serve",
        help="run a custodian peer: validate and ack conveyed frames "
             "(the localhost-cluster harness spawns these)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port to bind (0 = OS-assigned; the bound "
                            "port is announced on stdout)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    topo = Topology.regular(
        l=args.providers, n=args.collectors, m=args.governors, r=args.r
    )
    behaviors = {
        topo.collectors[i]: MisreportBehavior(0.5)
        for i in range(min(args.misreporters, topo.n))
    }
    engine = ProtocolEngine(
        topo, ProtocolParams(f=args.f), behaviors=behaviors, seed=args.seed
    )
    workload = BernoulliWorkload(topo.providers, p_valid=args.p_valid, seed=args.seed + 1)
    for _ in range(args.rounds):
        engine.run_round(workload.take(args.batch))
    engine.run_round([])  # flush argued re-evaluations into a final block
    engine.finalize()
    summary = summarize_run(engine)
    rows = [
        (g.governor, g.screened, g.validations, g.unchecked, g.mistakes,
         f"{g.expected_loss:.2f}")
        for g in summary.governors
    ]
    print(format_table(
        ["governor", "screened", "validated", "unchecked", "mistakes", "E[loss]"], rows
    ))
    report = check_all_properties(engine.ledgers(), engine.transcript)
    print(f"\nchain height: {engine.store.height}")
    print(f"properties hold: {report.all_hold}")
    for violation in report.violations:
        print(f"  !! {violation}")
    return 0 if report.all_hold else 1


def _cmd_regret(args: argparse.Namespace) -> int:
    rows = []
    for seed in range(args.seeds):
        game = ReputationGame(
            MIXES[args.mix](), horizon=args.horizon, seed=seed,
            beta=args.beta, track_curves=False,
        )
        result = game.run()
        rows.append(
            (seed, f"{result.expected_loss:.2f}", f"{result.s_min:.2f}",
             f"{result.regret:.2f}", f"{result.theorem1_rhs():.1f}",
             "yes" if result.expected_loss <= result.theorem1_rhs() else "NO")
        )
    print(f"mix = {args.mix}, T = {args.horizon}")
    print(format_table(
        ["seed", "L_T", "S_min", "regret", "Thm-1 RHS", "within"], rows
    ))
    return 0


def _cmd_sweep_f(args: argparse.Namespace) -> int:
    table = SweepTable(parameter="f")
    for f in (0.1, 0.3, 0.5, 0.7, 0.9):
        topo = Topology.regular(l=12, n=6, m=4, r=3)
        engine = ProtocolEngine(
            topo, ProtocolParams(f=f),
            behaviors={"c0": MisreportBehavior(0.5)},
            seed=args.seed, leader_rotation=True,
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=args.seed + 1)
        for _ in range(args.rounds):
            engine.run_round(workload.take(args.batch))
        engine.finalize()
        summary = summarize_run(engine)
        table.add(f, {
            "validations/tx": round(
                summary.total_validations / (summary.transactions * topo.m), 4
            ),
            "unchecked rate": round(summary.mean_unchecked_rate, 4),
            "mistakes": float(summary.total_mistakes),
        })
    print(format_sweep(table))
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    params = ProtocolParams(f=args.f)
    collector_ids = [f"c{i}" for i in range(8)]
    policies = {
        "reputation (paper)": lambda: ReputationPolicy(
            params=params, collector_ids=collector_ids
        ),
        "check-all": lambda: CheckAllPolicy(),
        "check-none": lambda: CheckNonePolicy(),
        "uniform": lambda: UniformSelectionPolicy(params=params),
        "majority": lambda: MajorityVotePolicy(),
    }
    rows = []
    for name, factory in policies.items():
        sim = PolicySimulation(MIXES[args.mix](), horizon=args.horizon, seed=args.seed)
        stats = sim.run(factory(), policy_seed=args.seed + 1)
        rows.append(
            (name, stats.mistakes, stats.validations, f"{stats.mistake_rate:.4f}")
        )
    print(f"mix = {args.mix}, horizon = {args.horizon}, f = {args.f}")
    print(format_table(["policy", "mistakes", "validations", "mistake rate"], rows))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.workloads.scenarios import build_engine

    engine, workload, scenario = build_engine(args.name, seed=args.seed)
    rounds = args.rounds if args.rounds is not None else scenario.rounds
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(f"topology: l={scenario.l} n={scenario.n} m={scenario.m} r={scenario.r}; "
          f"f={scenario.params.f}, {rounds} rounds x {scenario.batch} tx")
    for _ in range(rounds):
        engine.run_round(workload.take(scenario.batch))
    engine.run_round([])  # flush argued re-evaluations into a final block
    engine.finalize()
    summary = summarize_run(engine)
    rows = [
        (g.governor, g.screened, g.validations, g.unchecked, g.mistakes)
        for g in summary.governors
    ]
    print(format_table(
        ["governor", "screened", "validated", "unchecked", "mistakes"], rows
    ))
    report = check_all_properties(engine.ledgers(), engine.transcript)
    print(f"properties hold: {report.all_hold}")
    return 0 if report.all_hold else 1


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.workloads.scenarios import build_shard_deployment

    coordinator, workload, scenario = build_shard_deployment(
        args.preset, seed=args.seed, workers=args.workers
    )
    rounds = args.rounds if args.rounds is not None else scenario.rounds
    print(f"shard scenario: {scenario.name} — {scenario.description}")
    print(f"topology: l={scenario.l} n={scenario.n} m={scenario.m} r={scenario.r} "
          f"across {scenario.shards} shards; p_cross={scenario.p_cross}, "
          f"{rounds} super-rounds x {scenario.batch} tx "
          f"[{coordinator.backend.kind} backend]")
    for _ in range(rounds):
        coordinator.submit(workload.take(scenario.batch))
        coordinator.run_super_round()
    report = coordinator.finalize()

    # Backend-neutral reporting: chain_stats works whether the engines
    # are in-process or in worker processes.
    rows = []
    all_hold = True
    for stats in coordinator.chain_stats():
        rows.append((stats.shard, stats.height, stats.origin, stats.cross_out,
                     stats.receipts_in, f"{stats.reputation_mass:.3f}"))
        all_hold = all_hold and stats.properties_hold
    coordinator.close()
    print(format_table(
        ["shard", "height", "committed", "cross-out", "cross-in", "rep mass"],
        rows,
    ))
    migrations = sum(len(moves) for _, _, moves in coordinator.reshuffle_log)
    print(f"\naggregate committed: {coordinator.committed_total} tx, "
          f"throughput {coordinator.throughput():.2f} tx/sim-s")
    print(f"reshuffles: {len(coordinator.reshuffle_log)} "
          f"({migrations} collector migrations)")
    print(f"cross-shard atomicity clean: {report.clean}")
    print(f"properties hold on all shards: {all_hold}")
    for violation in report.violations:
        print(f"  !! {violation}")
    return 0 if report.clean and all_hold else 1


def _cmd_durable(args: argparse.Namespace) -> int:
    import time as _time

    from repro.workloads.scenarios import build_durable_engine

    engine, workload, scenario = build_durable_engine(
        args.preset, seed=args.seed, storage_dir=args.dir
    )
    rounds = args.rounds if args.rounds is not None else scenario.rounds
    report = engine.recovery_report
    print(f"durable scenario: {scenario.name} — {scenario.description}")
    print(f"storage: {args.dir} (checkpoint every "
          f"{scenario.checkpoint_interval} blocks)")
    print(f"recovery: {report.summary()}", flush=True)
    for _ in range(rounds):
        engine.run_round(workload.take(scenario.batch))
        # The flushed marker is the chaos harness's kill cue: seeing
        # "round k" on stdout guarantees block k was fsynced.
        print(f"round {engine.store.height} tip={engine.store.tip_hash().hex()}",
              flush=True)
        if args.round_delay > 0:
            _time.sleep(args.round_delay)
    engine.finalize()
    clean = engine.harness_auditor.report.clean
    print(f"final height {engine.store.height} "
          f"tip={engine.store.tip_hash().hex()}")
    print(f"auditor clean: {clean}")
    return 0 if clean else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.storage import recover

    report = recover(args.dir)
    print(f"recovery: {report.summary()}")
    if report.blocks:
        tip = report.blocks[-1].hash().hex()
    elif report.base_serial:
        tip = report.base_hash.hex() + " (checkpoint base)"
    else:
        tip = "(empty)"
    print(f"tip: {tip}")
    for bad in report.corruptions:
        print(f"  !! {bad.kind} in {bad.target} @ {bad.offset}: {bad.detail}")
    return 0 if report.clean else 1


def _cmd_stream(args: argparse.Namespace) -> int:
    from dataclasses import asdict, is_dataclass

    from repro.obs.registry import MetricsRegistry
    from repro.streaming.scenarios import build_streaming_session

    obs = MetricsRegistry()
    runner, scenario = build_streaming_session(
        args.preset, seed=args.seed, universe=args.universe, obs=obs
    )
    rounds = args.rounds if args.rounds is not None else scenario.rounds
    size = args.universe if args.universe is not None else scenario.universe
    print(f"stream scenario: {scenario.name} — {scenario.description}")
    print(f"universe: {size} virtual providers, {rounds} rounds")
    runner.run(rounds)
    report = runner.report()
    items = asdict(report) if is_dataclass(report) else dict(report)
    width = max(len(k) for k in items)
    for key, value in items.items():
        print(f"  {key:<{width}}  {value}")
    session = runner.session
    print(f"touched reputation rows: {session.touched_rows()} "
          f"(universe x collectors = {size * len(session.collectors)})")
    clean = bool(items.get("audit_clean", True))
    return 0 if clean else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.network.realnet import NodeServer

    async def serve() -> None:
        server = NodeServer(host=args.host, port=args.port)
        await server.start()
        # The flushed announcement is the cluster harness's readiness
        # cue (and carries the OS-assigned port when --port 0).
        print(f"listening host={server.host} port={server.port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "regret": _cmd_regret,
    "sweep-f": _cmd_sweep_f,
    "baselines": _cmd_baselines,
    "scenario": _cmd_scenario,
    "shard": _cmd_shard,
    "durable": _cmd_durable,
    "recover": _cmd_recover,
    "stream": _cmd_stream,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
