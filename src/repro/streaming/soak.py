"""Nightly chaos soak: the flash-sale load shape over a chaotic TCP cluster.

The PR-9 transport parity gate proved one seeded scenario commits the
bit-identical tip through socket chaos.  This soak hardens that claim
against the streaming subsystem's nastiest traffic: the **flash-sale
oracle's** load shape — :class:`~repro.workloads.arrivals.BurstyArrivals`
spikes, uniform buyer selection over a virtual universe, ticket-order
payloads with a victim-buyer slice — plus its **scalper-cartel**
adversary mix, replayed over and over through
:class:`~repro.faults.proxy.TransportFaultProxy` chaos (frame loss,
duplication, reordering) until a wall-clock budget runs out.

Every iteration uses a fresh seed and asserts the PR-9 contract from
scratch: the chaotic real run must commit the same tip, height and sim
clock as the pure simulator run of the identical scenario, with a clean
safety audit on both sides.  The budget, not an iteration count, bounds
the run — a 10-second smoke and a 10-minute nightly soak exercise the
same code with the same assertions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.byzantine.strategies import CartelPlan, ColludingCollectorBehavior
from repro.agents.behaviors import MisreportBehavior
from repro.faults.plan import FaultPlan, LinkFaultSpec
from repro.faults.proxy import start_proxy_thread
from repro.network.cluster import ClusterScenario, launch_custodians, run_scenario
from repro.network.realnet import TransportConfig
from repro.network.topology import Topology, collector_id
from repro.streaming.universe import VirtualUniverse
from repro.streaming.workload import StreamingWorkload
from repro.workloads.arrivals import BurstyArrivals
from repro.workloads.generator import TxSpec

__all__ = ["SoakReport", "chaos_soak", "flash_sale_cluster_scenario"]

#: Wall-clock-snappy transport knobs (same machinery as the defaults,
#: tightened so each chaotic iteration converges in seconds).
SOAK_CONFIG = TransportConfig(
    connect_timeout=1.0,
    connect_attempts=10,
    backoff_base=0.02,
    backoff_max=0.25,
    send_deadline=0.3,
    deadline_poll=0.02,
    max_retries=24,
    heartbeat_interval=0.25,
    heartbeat_budget=3,
    session_floor=0.02,
    stall_timeout=30.0,
)


def _flash_sale_workload(scenario: ClusterScenario, topology: Topology):
    """Per-round spec source: the flash-sale stream at cluster scale.

    The virtual universe is sized to the cluster topology, so every
    emitted provider id names a real enrolled provider; spikes beyond
    the packing budget are clipped (the cluster engine, unlike
    :class:`~repro.streaming.session.StreamingSession`, has no backlog).
    """
    virtual = VirtualUniverse(
        universe=len(topology.providers),
        n=scenario.n,
        m=scenario.m,
        r=scenario.r,
    )
    victim = "p0"

    def enrich(spec: TxSpec, index: int, rng) -> TxSpec:
        provider = victim if index % 7 == 3 else spec.provider
        payload = {
            "buyer": provider,
            "event": "soak-onsale",
            "quantity": 1 + int(rng.integers(4)),
            "human": spec.is_valid,
        }
        return TxSpec(provider=provider, payload=payload, is_valid=spec.is_valid)

    workload = StreamingWorkload(
        virtual,
        arrivals=BurstyArrivals(
            rate=4.0, burst_rate=40.0, p_burst=0.3, p_end=0.3,
            seed=scenario.seed + 1,
        ),
        validity="bernoulli",
        selection="uniform",
        seed=scenario.seed + 1,
        p_valid=0.75,
        spec_hook=enrich,
    )
    budget = scenario.params().b_limit - 8  # headroom for re-evaluations

    def next_batch(round_number: int) -> list[TxSpec]:
        return workload.for_round(round_number)[:budget]

    return next_batch


def flash_sale_cluster_scenario(seed: int, rounds: int = 3) -> ClusterScenario:
    """One soak iteration's scenario: flash-sale load + scalper cartel."""
    plan = CartelPlan(target_provider="p0", mode="conceal")
    behaviors = {
        collector_id(2): ColludingCollectorBehavior(plan),
        collector_id(3): MisreportBehavior(0.5),
    }
    return ClusterScenario(
        l=8, n=4, m=4, r=2,
        rounds=rounds,
        seed=seed,
        behaviors=behaviors,
        workload_factory=_flash_sale_workload,
    )


@dataclass
class SoakReport:
    """Aggregate outcome of one soak run."""

    iterations: int = 0
    committed: int = 0
    tips_matched: int = 0
    audits_clean: int = 0
    proxy_frames_dropped: int = 0
    proxy_frames_duplicated: int = 0
    wall_s: float = 0.0

    @property
    def all_ok(self) -> bool:
        """Every iteration matched tips and audited clean."""
        return (
            self.iterations > 0
            and self.tips_matched == self.iterations
            and self.audits_clean == self.iterations
        )


def chaos_soak(
    budget_s: float,
    seed: int = 0,
    peers: int = 2,
    rounds_per_iteration: int = 3,
) -> SoakReport:
    """Replay fresh-seeded flash-sale scenarios through socket chaos.

    Runs at least one iteration, then keeps going until ``budget_s``
    wall-clock seconds have elapsed.  Each iteration commits the same
    scenario twice — simulator baseline, then the real transport behind
    chaos proxies — and scores tip equality and audit cleanliness.
    """
    report = SoakReport()
    t0 = time.monotonic()
    deadline = t0 + budget_s
    handle = launch_custodians(peers)
    plan = (
        FaultPlan(seed=seed + 99)
        .with_default_link(LinkFaultSpec(loss=0.05, duplicate=0.05, reorder=0.03))
    )
    proxies = [
        start_proxy_thread(host, port, plan)
        for _, host, port in handle.addresses
    ]
    try:
        proxied = [
            (name, "127.0.0.1", proxy.port)
            for (name, _, _), (proxy, _) in zip(handle.addresses, proxies)
        ]
        iteration = 0
        while iteration == 0 or time.monotonic() < deadline:
            scenario = flash_sale_cluster_scenario(
                seed + iteration, rounds=rounds_per_iteration
            )
            sim = run_scenario(scenario, backend="sim")
            chaos = run_scenario(
                scenario, backend="real",
                custodians=proxied, config=SOAK_CONFIG,
            )
            report.iterations += 1
            report.committed += chaos["committed"]
            if (
                sim["tip"] == chaos["tip"]
                and sim["height"] == chaos["height"]
                and sim["clock"] == chaos["clock"]
            ):
                report.tips_matched += 1
            if (
                sim["audit_clean"] and chaos["audit_clean"]
                and sim["violations"] == 0 and chaos["violations"] == 0
            ):
                report.audits_clean += 1
            iteration += 1
        report.proxy_frames_dropped = sum(p.frames_dropped for p, _ in proxies)
        report.proxy_frames_duplicated = sum(
            p.frames_duplicated for p, _ in proxies
        )
    finally:
        for _, stop in proxies:
            stop()
        handle.close()
    report.wall_s = time.monotonic() - t0
    return report
