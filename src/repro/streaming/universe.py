"""Virtual provider populations for streaming workloads.

A :class:`VirtualUniverse` describes the same circulant link structure
:meth:`repro.network.topology.Topology.regular` builds — provider ``k``
feeds collectors ``(k*r % n + offset) % n`` — but *analytically*: no id
tuples or link dicts are materialized, so a universe of 10^6 registered
providers costs O(n) memory.  :class:`CollectorMembers` is the per-
collector membership view the sparse reputation books index against:
O(1) containment, O(1) length, lazy iteration in exactly the order the
materialized ``providers_of`` tuple would list — which is what keeps
small-N streaming runs bit-identical to the dense path
(``tests/test_streaming.py`` locks the two structures against each
other).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterator

from repro.exceptions import TopologyError
from repro.network.topology import collector_id, governor_id, provider_id

__all__ = ["VirtualUniverse", "CollectorMembers", "parse_provider_index"]


def parse_provider_index(pid: str) -> int | None:
    """The ``k`` of a canonical ``p{k}`` id, or None for anything else."""
    if len(pid) < 2 or pid[0] != "p":
        return None
    digits = pid[1:]
    if not digits.isdigit():
        return None
    k = int(digits)
    # Reject non-canonical spellings like "p007": every id in the system
    # is produced by provider_id(), so anything else is foreign.
    if digits != str(k):
        return None
    return k


class CollectorMembers:
    """Lazy view of one collector's provider membership.

    The circulant membership predicate — provider ``k`` belongs to
    collector ``i`` iff ``(i - k*r) mod n < r`` — is periodic in ``k``
    with period ``n // gcd(r, n)``, so one precomputed boolean pattern
    answers containment for any universe size.  Iteration yields
    ascending provider indices, the same order ``Topology.regular``
    appends them in; indexing (``members[j]``) serves the collector
    agent's deterministic forgery-victim pick.
    """

    __slots__ = ("universe", "n", "r", "index", "_period", "_pattern", "_positions", "_prefix", "_length")

    def __init__(self, universe: int, n: int, r: int, collector_index: int):
        self.universe = universe
        self.n = n
        self.r = r
        self.index = collector_index
        period = n // gcd(r, n)
        self._period = period
        pattern = tuple(
            ((collector_index - k * r) % n) < r for k in range(period)
        )
        self._pattern = pattern
        self._positions = tuple(k for k in range(period) if pattern[k])
        prefix = [0]
        for flag in pattern:
            prefix.append(prefix[-1] + (1 if flag else 0))
        self._prefix = tuple(prefix)
        full, rem = divmod(universe, period)
        self._length = full * len(self._positions) + self._prefix[rem]

    def __contains__(self, pid: object) -> bool:
        if not isinstance(pid, str):
            return False
        k = parse_provider_index(pid)
        if k is None or not 0 <= k < self.universe:
            return False
        return self._pattern[k % self._period]

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[str]:
        for base in range(0, self.universe, self._period):
            for pos in self._positions:
                k = base + pos
                if k >= self.universe:
                    return
                yield provider_id(k)

    def __getitem__(self, j: int) -> str:
        """The ``j``-th member in iteration (ascending-index) order."""
        if not 0 <= j < self._length:
            raise IndexError(f"member index {j} out of range [0, {self._length})")
        per_period = len(self._positions)
        full, rem = divmod(j, per_period)
        return provider_id(full * self._period + self._positions[rem])


@dataclass(frozen=True)
class VirtualUniverse:
    """An un-materialized ``(universe, n, m, r)`` circulant deployment.

    ``universe`` registered providers exist *in potentia*; agents and
    reputation overrides are only instantiated for those that actually
    arrive.  At any ``universe == l`` the structure is link-for-link the
    topology :meth:`Topology.regular` builds (locked by a test), so the
    streaming path is a strict lazification, not a new graph family.
    """

    universe: int
    n: int
    m: int
    r: int

    def __post_init__(self) -> None:
        if min(self.universe, self.n, self.m, self.r) < 1:
            raise TopologyError(
                f"all sizes must be >= 1, got universe={self.universe} "
                f"n={self.n} m={self.m} r={self.r}"
            )
        if self.r > self.n:
            raise TopologyError(
                f"provider degree r={self.r} exceeds collector count n={self.n}"
            )
        if (self.r * self.universe) % self.n != 0:
            raise TopologyError(
                f"r*universe = {self.r * self.universe} is not divisible by "
                f"n = {self.n}; degrees must balance exactly"
            )

    @property
    def collectors(self) -> tuple[str, ...]:
        """Ordered collector ids (the only materialized role tuples)."""
        return tuple(collector_id(i) for i in range(self.n))

    @property
    def governors(self) -> tuple[str, ...]:
        """Ordered governor ids."""
        return tuple(governor_id(j) for j in range(self.m))

    def contains_provider(self, pid: str) -> bool:
        """Whether ``pid`` names a registered (virtual) provider."""
        k = parse_provider_index(pid)
        return k is not None and 0 <= k < self.universe

    def collectors_of_index(self, k: int) -> tuple[str, ...]:
        """The ``r`` collector ids provider ``k`` feeds (circulant)."""
        if not 0 <= k < self.universe:
            raise TopologyError(
                f"provider index {k} outside universe [0, {self.universe})"
            )
        start = (k * self.r) % self.n
        return tuple(
            collector_id((start + offset) % self.n) for offset in range(self.r)
        )

    def collectors_of(self, pid: str) -> tuple[str, ...]:
        """Id-keyed variant of :meth:`collectors_of_index`."""
        k = parse_provider_index(pid)
        if k is None:
            raise TopologyError(f"unknown provider {pid!r}")
        return self.collectors_of_index(k)

    def members_of(self, collector: str) -> CollectorMembers:
        """The lazy membership view for one collector id."""
        for i in range(self.n):
            if collector_id(i) == collector:
                return CollectorMembers(self.universe, self.n, self.r, i)
        raise TopologyError(f"unknown collector {collector!r}")

    def collector_members(self) -> dict[str, CollectorMembers]:
        """collector id -> membership view, for book registration."""
        return {
            collector_id(i): CollectorMembers(self.universe, self.n, self.r, i)
            for i in range(self.n)
        }
