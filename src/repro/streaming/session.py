"""Streaming protocol session: lazy provider lifecycle over virtual populations.

:class:`StreamingSession` executes the same four-phase round the
in-process :class:`~repro.core.protocol.ProtocolEngine` runs — collect,
upload, screen/pack, argue — but its provider population is a
:class:`~repro.streaming.universe.VirtualUniverse`: a provider agent is
**instantiated on first arrival** (key enrolment, link registration,
governor link maps) and **retired after a configurable idle window**
(agent dropped, cursors forgotten, link maps shrunk), so resident
memory is bounded by the *active set* plus the reputation rows
Algorithm 3 has actually touched — never by the universe size.  The
sparse reputation books
(:class:`~repro.core.reputation.SparseWeightMap` over
:class:`~repro.streaming.universe.CollectorMembers`) make the governor
side equally lazy.

What deliberately differs from the materialized engine:

* arrivals exceeding ``b_limit`` spill into a FIFO **backlog** drained
  in later rounds (open-loop offered load vs. the engine's hard
  ``ConfigurationError``);
* per-round **reward distribution is skipped** — ``log_score`` walks a
  collector's full membership, which is O(universe) here; rewards can
  be computed offline from the books;
* retirement saves only the provider's signing nonce: a retired
  provider is *inactive* in the paper's sense (the Validity property
  does not quantify over it), and any still-unchecked truth it leaves
  behind is revealed at :meth:`finalize` exactly as the engine does.

Identity keys are stable across retire/re-arrive cycles (the Identity
Manager keeps the enrolment record), so old signatures keep verifying.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.agents.behaviors import CollectorBehavior, HonestBehavior
from repro.agents.collector import Collector
from repro.agents.governor import Governor
from repro.agents.provider import Provider
from repro.audit import config as audit_config
from repro.consensus.pos import LeaderElection
from repro.consensus.stake import StakeLedger
from repro.core.params import ProtocolParams
from repro.crypto.identity import IdentityManager, Role
from repro.exceptions import ConfigurationError
from repro.ledger.block import Block
from repro.ledger.properties import RunTranscript
from repro.ledger.store import BlockStore
from repro.ledger.transaction import LabeledTransaction, TxRecord
from repro.ledger.validation import CountingOracle, GroundTruthOracle
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.streaming.universe import VirtualUniverse, parse_provider_index
from repro.streaming.workload import StreamingWorkload
from repro.workloads.generator import TxSpec

__all__ = ["StreamingSession", "StreamMetrics", "stream_metrics"]


def stream_metrics(registry: MetricsRegistry) -> dict[str, object]:
    """Fetch-or-register the ``stream_*`` metric family on ``registry``."""
    return {
        "active": registry.gauge(
            "stream_active_providers",
            "Provider agents currently instantiated (the resident active set)",
        ),
        "instantiated": registry.counter(
            "stream_instantiations_total",
            "Provider instantiations, by kind (first arrival vs. re-arrival)",
            labels=("kind",),
        ),
        "retired": registry.counter(
            "stream_retirements_total",
            "Providers retired after the idle window",
        ),
        "backlog": registry.gauge(
            "stream_backlog",
            "Arrived transactions awaiting a block slot (b_limit spill)",
        ),
        "tx": registry.counter(
            "stream_tx_total",
            "Streaming workload transactions committed into rounds",
        ),
        "peak_rss": registry.gauge(
            "stream_peak_rss_bytes",
            "Process peak RSS sampled at session finalize (ru_maxrss)",
        ),
    }


@dataclass
class StreamMetrics:
    """Run-level streaming counters (plain numbers; obs mirrors them)."""

    rounds: int = 0
    transactions: int = 0
    instantiations: int = 0
    reinstantiations: int = 0
    retirements: int = 0
    peak_active: int = 0
    peak_backlog: int = 0
    argues_admitted: int = 0


@dataclass
class _RetiredState:
    """What survives a provider's retirement: its signing continuity."""

    nonce: int


class StreamingSession:
    """Open-loop streaming execution over a virtual provider population.

    Args:
        universe: The virtual ``(universe, n, m, r)`` deployment.
        params: Protocol parameters (``b_limit`` caps the block batch;
            overflow arrives in the backlog).
        workload: The lazy spec stream; drive rounds via
            :meth:`run_round` (explicit specs) or :meth:`run` (pull
            ``workload.for_round`` per round).
        behaviors: collector id -> behaviour; missing ids are honest.
        seed: Master seed — collector/governor RNG derivation order
            matches the materialized engine (collectors first, then
            governors), so agent behaviour at equal population is
            comparable.
        retirement_rounds: Idle rounds before an instantiated provider
            is retired; ``None`` disables retirement ("always active",
            the equivalence-testing mode).
        leader_rotation: Round-robin leaders (default here — streaming
            benches measure workload scaling, not the VRF); ``False``
            restores the PoS election with unit stake.
        obs: Optional metrics registry (``stream_*`` family; see
            OBSERVABILITY.md).  Never touches RNG or control flow.
    """

    def __init__(
        self,
        universe: VirtualUniverse,
        params: ProtocolParams,
        workload: StreamingWorkload | None = None,
        behaviors: dict[str, CollectorBehavior] | None = None,
        seed: int = 0,
        retirement_rounds: int | None = 8,
        leader_rotation: bool = True,
        obs: MetricsRegistry | None = None,
    ):
        if retirement_rounds is not None and retirement_rounds < 1:
            raise ConfigurationError(
                f"retirement_rounds must be >= 1 or None, got {retirement_rounds}"
            )
        self.universe = universe
        self.params = params
        self.workload = workload
        self.seed = seed
        self.retirement_rounds = retirement_rounds
        self.leader_rotation = leader_rotation
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.im = IdentityManager(seed=seed, obs=self.obs)
        self.oracle = GroundTruthOracle()
        self.transcript = RunTranscript()
        self.store = BlockStore()
        self.metrics = StreamMetrics()
        self.audit_report = None
        self._round = 0
        self._backlog: deque[TxSpec] = deque()
        self._reevaluated_queue: dict[str, TxRecord] = {}
        self._master = np.random.default_rng(seed)
        self._m = stream_metrics(self.obs)
        self._m_inst_first = self._m["instantiated"].labels(kind="first")
        self._m_inst_re = self._m["instantiated"].labels(kind="rearrival")

        behaviors = dict(behaviors or {})
        unknown = set(behaviors) - set(universe.collectors)
        if unknown:
            raise ConfigurationError(
                f"behaviours supplied for unknown collectors: {sorted(unknown)}"
            )

        members = universe.collector_members()
        # Enrolment order mirrors the materialized engine minus the
        # up-front provider sweep: collectors first, then governors;
        # provider keys are drawn lazily at first arrival.
        self.collectors: dict[str, Collector] = {}
        for cid in universe.collectors:
            key = self.im.enroll(cid, Role.COLLECTOR)
            self.collectors[cid] = Collector(
                collector_id=cid,
                key=key,
                linked_providers=members[cid],
                behavior=behaviors.get(cid, HonestBehavior()),
                rng=np.random.default_rng(self._master.integers(2**63)),
            )
        self.governors: dict[str, Governor] = {}
        for gid in universe.governors:
            key = self.im.enroll(gid, Role.GOVERNOR)
            gov = Governor(
                governor_id=gid,
                key=key,
                params=params,
                im=self.im,
                oracle=CountingOracle(inner=self.oracle),
                rng=np.random.default_rng(self._master.integers(2**63)),
                obs=self.obs,
            )
            gov.register_streaming(dict(members))
            self.governors[gid] = gov

        self.election = LeaderElection(
            im=self.im, governor_order=list(universe.governors)
        )
        self.stake = StakeLedger.from_balances(
            {g: 1 for g in universe.governors}
        )
        # Active provider agents and their idle clocks.
        self.providers: dict[str, Provider] = {}
        self._last_seen: dict[str, int] = {}
        self._retired: dict[str, _RetiredState] = {}
        self._linked_registered: set[str] = set()

    # -- provider lifecycle ----------------------------------------------

    def _instantiate(self, pid: str) -> Provider:
        """Materialize a virtual provider on arrival (idempotent)."""
        provider = self.providers.get(pid)
        if provider is not None:
            return provider
        k = parse_provider_index(pid)
        if k is None or not self.universe.contains_provider(pid):
            raise ConfigurationError(
                f"provider {pid!r} is outside the registered universe"
            )
        linked = self.universe.collectors_of_index(k)
        retired = self._retired.pop(pid, None)
        if retired is None and pid not in self._linked_registered:
            key = self.im.enroll(pid, Role.PROVIDER)
            for cid in linked:
                self.im.register_link(cid, pid)
            self._linked_registered.add(pid)
            self.metrics.instantiations += 1
            self._m_inst_first.inc()
        else:
            # Re-arrival: the enrolment record (and its key) persists in
            # the Identity Manager, so old signatures keep verifying.
            key = self.im.record(pid).key
            self.metrics.reinstantiations += 1
            self._m_inst_re.inc()
        provider = Provider(provider_id=pid, key=key, linked_collectors=linked)
        if retired is not None:
            provider._nonce = retired.nonce
        self.providers[pid] = provider
        for gov in self.governors.values():
            gov.link_provider(pid, linked)
        self.metrics.peak_active = max(self.metrics.peak_active, len(self.providers))
        self._m["active"].set(float(len(self.providers)))
        return provider

    def _retire_idle(self, round_number: int) -> None:
        if self.retirement_rounds is None:
            return
        cutoff = round_number - self.retirement_rounds
        for pid in [
            p for p, seen in self._last_seen.items() if seen <= cutoff
        ]:
            provider = self.providers.pop(pid)
            self._retired[pid] = _RetiredState(nonce=provider._nonce)
            del self._last_seen[pid]
            self.store.forget_reader(pid)
            for gov in self.governors.values():
                gov.unlink_provider(pid)
            self.metrics.retirements += 1
            self._m["retired"].inc()
        self._m["active"].set(float(len(self.providers)))

    @property
    def active_providers(self) -> int:
        """Currently instantiated provider agents."""
        return len(self.providers)

    @property
    def backlog_depth(self) -> int:
        """Arrived transactions still awaiting a block slot."""
        return len(self._backlog)

    # -- round execution --------------------------------------------------

    def offer(self, specs: list[TxSpec]) -> None:
        """Queue arrived transactions (open-loop: never rejects)."""
        self._backlog.extend(specs)
        self.metrics.peak_backlog = max(self.metrics.peak_backlog, len(self._backlog))
        self._m["backlog"].set(float(len(self._backlog)))

    def run_round(self, specs: list[TxSpec] | None = None):
        """Execute one streaming round.

        ``specs`` (or the workload's per-round arrivals when driven via
        :meth:`run`) join the backlog; the round packs at most
        ``b_limit`` minus the re-evaluated queue.
        """
        if specs:
            self.offer(list(specs))
        self._round += 1
        round_number = self._round
        budget = self.params.b_limit - len(self._reevaluated_queue)
        batch = [self._backlog.popleft() for _ in range(min(budget, len(self._backlog)))]
        self._m["backlog"].set(float(len(self._backlog)))
        m = self.universe.m

        # Phase 1: collecting — instantiating arrivals as needed.
        timestamp = float(round_number)
        deliveries: list[tuple[str, object]] = []
        for spec in batch:
            provider = self._instantiate(spec.provider)
            self._last_seen[spec.provider] = round_number
            tx = provider.create_transaction(spec.payload, timestamp)
            self.oracle.assign(tx, spec.is_valid)
            self.transcript.provider_broadcasts.add(tx.tx_id)
            if spec.is_valid and provider.active:
                self.transcript.honest_valid_tx.add(tx.tx_id)
            for cid in provider.linked_collectors:
                deliveries.append((cid, tx))

        # Phase 2: uploading.
        uploads: list[LabeledTransaction] = []
        for cid, tx in deliveries:
            collector = self.collectors[cid]
            for labeled in collector.process_all(tx, self.oracle):
                uploads.append(labeled)
                self.transcript.collector_uploads.add(tx.tx_id)
        for collector in self.collectors.values():
            forged = collector.maybe_forge(timestamp)
            if forged is not None:
                uploads.append(forged)

        # Phase 3: processing — every governor screens; the leader packs.
        leader_id = self._elect_leader(round_number)
        leader = self.governors[leader_id]
        leader_records: list[TxRecord] = []
        for gid, governor in self.governors.items():
            for upload in uploads:
                governor.ingest_upload(upload)
            records = governor.screen_pending()
            if gid == leader_id:
                leader_records = records
        block_records = list(self._reevaluated_queue.values()) + leader_records
        self._reevaluated_queue.clear()
        block = Block(
            serial=self.store.height + 1,
            tx_list=tuple(block_records),
            prev_hash=leader.ledger.tip_hash(),
            proposer=leader_id,
            round_number=round_number,
            b_limit=self.params.b_limit,
        )
        for governor in self.governors.values():
            governor.ledger.append(block)
        self.store.publish(block)

        # Phase 4: arguing — only instantiated (active) providers scan.
        argues_admitted = 0
        for provider in self.providers.values():
            fresh = self.store.next_for(provider.provider_id)
            while fresh is not None:
                for tx_id in provider.review_block(fresh, self.oracle):
                    self.transcript.argue_calls.add(tx_id)
                    admitted_record: TxRecord | None = None
                    for governor in self.governors.values():
                        record = governor.handle_argue(tx_id)
                        if record is not None:
                            admitted_record = record
                    if admitted_record is not None:
                        argues_admitted += 1
                        self._reevaluated_queue[tx_id] = admitted_record
                fresh = self.store.next_for(provider.provider_id)

        self._retire_idle(round_number)
        self.metrics.rounds += 1
        self.metrics.transactions += len(batch)
        self.metrics.argues_admitted += argues_admitted
        self._m["tx"].inc(len(batch))
        return block

    def run(self, rounds: int) -> None:
        """Drive ``rounds`` rounds from the configured workload's arrivals."""
        if self.workload is None:
            raise ConfigurationError("run() needs a workload; pass specs to run_round()")
        for _ in range(rounds):
            self.run_round(self.workload.for_round(self._round + 1))

    def _elect_leader(self, round_number: int) -> str:
        order = list(self.universe.governors)
        if self.leader_rotation:
            return order[(round_number - 1) % len(order)]
        return self.election.run(self.stake, round_number)

    # -- finalisation ------------------------------------------------------

    def finalize(self) -> None:
        """Reveal pending truths, sample peak RSS, run the harness audit.

        The audit checks cross-replica agreement and the Theorem-1
        regret guardrail; neither walks the reputation books, so the
        cost is independent of the universe size.
        """
        for governor in self.governors.values():
            for tx_id in list(governor._pending_unchecked):
                governor.reveal_truth(tx_id, self.oracle)
        import resource
        import sys

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is bytes on macOS, kilobytes on Linux.
        scale = 1 if sys.platform == "darwin" else 1024
        self._m["peak_rss"].set(float(rss_kb * scale))
        cfg = audit_config.get_config()
        if cfg.enabled:
            from repro.audit.auditor import harness_audit

            self.audit_report = harness_audit(
                "streaming-harness",
                self.ledgers(),
                list(self.governors.values()),
                r=self.universe.r,
                beta=self.params.beta,
                round_number=self._round,
                s_min=cfg.s_min,
                obs=self.obs,
            )

    # -- accessors ---------------------------------------------------------

    @property
    def round_number(self) -> int:
        """Rounds executed so far."""
        return self._round

    def ledgers(self) -> list:
        """Every governor's ledger replica (for property checks)."""
        return [g.ledger for g in self.governors.values()]

    def touched_rows(self) -> int:
        """Total sparse-override entries across all books (memory proxy)."""
        total = 0
        for gov in self.governors.values():
            for cid in gov.book.collectors():
                total += gov.book.vector(cid).provider_weights.touched
        return total
