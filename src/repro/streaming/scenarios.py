"""Named streaming presets: the `repro stream` registry.

A :class:`StreamScenario` is materialised by
:func:`build_streaming_session` into a ready domain runner — either one
of the :mod:`repro.apps` streaming oracles (supply chain, energy,
ticketing) or a plain synthetic session for smoke/bench use.  Every
runner exposes the same surface: ``.session`` (the
:class:`~repro.streaming.session.StreamingSession`), ``run(rounds)``
and ``report()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.streaming.session import StreamingSession
from repro.streaming.universe import VirtualUniverse
from repro.streaming.workload import StreamingWorkload
from repro.workloads.arrivals import PoissonArrivals

__all__ = [
    "StreamScenario",
    "STREAM_SCENARIOS",
    "stream_scenario_names",
    "build_streaming_session",
]


@dataclass
class _SyntheticRunner:
    """Plain streaming run (no domain payloads) for smoke and benches."""

    session: StreamingSession
    workload: StreamingWorkload

    def run(self, rounds: int) -> None:
        self.session.run(rounds)

    def report(self) -> dict:
        self.session.finalize()
        m = self.session.metrics
        return {
            "rounds": m.rounds,
            "transactions": m.transactions,
            "instantiations": m.instantiations,
            "retirements": m.retirements,
            "peak_active": m.peak_active,
            "peak_backlog": m.peak_backlog,
            "audit_clean": (
                self.session.audit_report is None
                or not self.session.audit_report.violations
            ),
        }


def _build_synthetic(universe: int, seed: int, obs) -> _SyntheticRunner:
    virtual = VirtualUniverse(universe=universe, n=8, m=4, r=4)
    workload = StreamingWorkload(
        virtual,
        arrivals=PoissonArrivals(20.0, seed=seed),
        validity="bernoulli",
        selection="uniform",
        seed=seed,
        p_valid=0.8,
    )
    session = StreamingSession(
        virtual,
        ProtocolParams(f=0.5, b_limit=48),
        workload=workload,
        seed=seed,
        retirement_rounds=6,
        obs=obs,
    )
    return _SyntheticRunner(session=session, workload=workload)


def _build_supplychain(universe: int, seed: int, obs):
    # Domain presets carry their own domain reports; the obs registry is
    # only threaded into the synthetic preset.
    from repro.apps.supplychain import SupplyChainProvenance

    return SupplyChainProvenance(universe=universe, seed=seed)


def _build_energy(universe: int, seed: int, obs):
    from repro.apps.energy import EnergyMarket

    return EnergyMarket(universe=universe, seed=seed)


def _build_ticketing(universe: int, seed: int, obs):
    from repro.apps.ticketing import FlashSaleTicketing

    return FlashSaleTicketing(universe=universe, seed=seed)


@dataclass(frozen=True)
class StreamScenario:
    """One named streaming preset."""

    name: str
    description: str
    universe: int
    rounds: int
    builder: Callable = field(repr=False)


STREAM_SCENARIOS: dict[str, StreamScenario] = {
    s.name: s
    for s in [
        StreamScenario(
            name="stream-smoke",
            description="synthetic uniform arrivals over a 10^4 universe",
            universe=10_000,
            rounds=8,
            builder=_build_synthetic,
        ),
        StreamScenario(
            name="supply-chain",
            description="multi-hop provenance with a counterfeit ring",
            universe=10_000,
            rounds=12,
            builder=_build_supplychain,
        ),
        StreamScenario(
            name="energy-trading",
            description="diurnal bidirectional flows, tampering aggregators",
            universe=10_000,
            rounds=24,
            builder=_build_energy,
        ),
        StreamScenario(
            name="flash-sale",
            description="extreme burst arrivals with a scalper cartel",
            universe=100_000,
            rounds=16,
            builder=_build_ticketing,
        ),
    ]
}


def stream_scenario_names() -> list[str]:
    """All registered streaming scenario names."""
    return sorted(STREAM_SCENARIOS)


def build_streaming_session(
    name: str,
    seed: int = 0,
    universe: int | None = None,
    obs: MetricsRegistry | None = None,
):
    """Materialise a named streaming preset.

    Args:
        universe: Override the preset's registered population size (the
            bench sweeps 10^4 / 10^5 / 10^6 this way).
        obs: Metrics registry for the synthetic preset's ``stream_*``
            family (domain presets carry their own reports).

    Returns:
        ``(runner, scenario)`` — drive with ``runner.run(rounds)`` and
        read ``runner.report()``.

    Raises:
        ConfigurationError: unknown scenario name.
    """
    scenario = STREAM_SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown streaming scenario {name!r}; available: {stream_scenario_names()}"
        )
    size = universe if universe is not None else scenario.universe
    runner = scenario.builder(size, seed, obs)
    return runner, scenario
