"""Streaming million-provider workload subsystem.

Open-loop transaction streams over *virtual* provider populations:
identities instantiate on first arrival and retire on inactivity, so
resident memory is bounded by the active set — not the universe — while
the sparse reputation layer (:class:`~repro.core.reputation.SparseWeightMap`)
keeps governor state proportional to the rows actually touched.
"""

from repro.streaming.session import StreamingSession, StreamMetrics, stream_metrics
from repro.streaming.universe import CollectorMembers, VirtualUniverse
from repro.streaming.workload import StreamingWorkload, derived_rates, provider_rate

__all__ = [
    "CollectorMembers",
    "StreamMetrics",
    "StreamingSession",
    "StreamingWorkload",
    "VirtualUniverse",
    "derived_rates",
    "provider_rate",
    "stream_metrics",
]
