"""Open-loop streaming workload over a virtual provider population.

:class:`StreamingWorkload` emits the same :class:`TxSpec` stream the
materialized generators in :mod:`repro.workloads.generator` would — the
validity models (``bernoulli`` / ``per_provider`` / ``bursty``) draw
from the identical main RNG stream in the identical order — but the
provider population is a :class:`~repro.streaming.universe.VirtualUniverse`:
nothing is allocated per provider until a transaction actually names
one.  The three auxiliary streams a streaming run needs (lazy
per-provider validity rates, uniform provider selection, domain payload
enrichment) are derived via tagged ``SeedSequence`` spawns so they never
perturb the validity stream — which is what makes the round-robin
small-N stream *bit-identical* to the materialized generators
(satellite property test in ``tests/test_streaming.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topology import provider_id
from repro.streaming.universe import VirtualUniverse
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.generator import TxSpec

__all__ = ["StreamingWorkload", "provider_rate", "derived_rates"]

#: Stream tags for the auxiliary RNGs (``SeedSequence([seed, TAG, ...])``).
#: Frozen constants — changing one changes every seeded streaming run.
_RATE_TAG = 0x53545231  # "STR1": lazy per-provider Beta validity rates
_SELECT_TAG = 0x53545232  # "STR2": uniform provider selection
_DOMAIN_TAG = 0x53545233  # "STR3": domain-oracle payload enrichment

VALIDITY_MODELS = ("bernoulli", "per_provider", "bursty")
SELECTION_MODES = ("round_robin", "uniform")


def provider_rate(
    seed: int, index: int, alpha: float = 8.0, beta: float = 2.0
) -> float:
    """Provider ``index``'s validity rate ~ Beta(alpha, beta), lazily.

    Keyed by ``(seed, RATE_TAG, index)`` so the rate of provider k is the
    same whether it is the first or the millionth to arrive — no up-front
    Beta sweep over the universe, and no coupling to the validity stream.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, _RATE_TAG, index]))
    return float(rng.beta(alpha, beta))


def derived_rates(
    providers, seed: int, alpha: float = 8.0, beta: float = 2.0
) -> dict[str, float]:
    """Materialized rate dict matching :func:`provider_rate` per id.

    Feed this to ``PerProviderWorkload(rates=...)`` to get a dense
    generator whose validity stream is bit-identical to the streaming
    ``per_provider`` model (the equivalence tests do exactly that).
    """
    from repro.streaming.universe import parse_provider_index

    rates = {}
    for pid in providers:
        k = parse_provider_index(pid)
        if k is None:
            raise ConfigurationError(f"non-canonical provider id {pid!r}")
        rates[pid] = provider_rate(seed, k, alpha, beta)
    return rates


class StreamingWorkload:
    """Lazy seeded :class:`TxSpec` stream over a virtual universe.

    Args:
        universe: The virtual population and its link structure.
        arrivals: Per-round offered-load process (:meth:`for_round`);
            optional when the caller drives :meth:`take` directly.
        validity: One of ``bernoulli`` / ``per_provider`` / ``bursty`` —
            semantics identical to the materialized generator of the
            same name.
        selection: ``round_robin`` walks provider indices in order
            (exactly the materialized base class' pick, which is what
            the equivalence property quantifies over); ``uniform`` draws
            indices from a dedicated selection stream, the realistic
            open-population model.
        seed: Seeds the main validity stream (same role as the
            materialized generators' ``seed``) and, via stream tags, the
            auxiliary streams.
        spec_hook: Optional ``(spec, index, rng) -> TxSpec`` transform a
            domain oracle uses to enrich payloads / set counterparties;
            it receives the dedicated domain RNG, so the validity stream
            is untouched by however much randomness the domain consumes.
    """

    def __init__(
        self,
        universe: VirtualUniverse,
        arrivals: ArrivalProcess | None = None,
        validity: str = "bernoulli",
        selection: str = "round_robin",
        seed: int = 0,
        p_valid: float = 0.5,
        alpha: float = 8.0,
        beta: float = 2.0,
        p_good: float = 0.95,
        p_bad: float = 0.2,
        stay: float = 0.98,
        spec_hook: Callable[[TxSpec, int, np.random.Generator], TxSpec] | None = None,
    ):
        if validity not in VALIDITY_MODELS:
            raise ConfigurationError(
                f"unknown validity model {validity!r}; choose from {VALIDITY_MODELS}"
            )
        if selection not in SELECTION_MODES:
            raise ConfigurationError(
                f"unknown selection mode {selection!r}; choose from {SELECTION_MODES}"
            )
        for name, p in (
            ("p_valid", p_valid),
            ("p_good", p_good),
            ("p_bad", p_bad),
            ("stay", stay),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if alpha <= 0 or beta <= 0:
            raise ConfigurationError("Beta distribution parameters must be positive")
        self.universe = universe
        self.arrivals = arrivals
        self.validity = validity
        self.selection = selection
        self.seed = seed
        self.p_valid = p_valid
        self.alpha = alpha
        self.beta = beta
        self._regimes = ((p_good, stay), (p_bad, stay))
        self._state = 0
        self.spec_hook = spec_hook
        # Main validity stream: the exact counterpart of the materialized
        # generators' self.rng.
        self.rng = np.random.default_rng(seed)
        self._select_rng = np.random.default_rng(
            np.random.SeedSequence([seed, _SELECT_TAG])
        )
        self._domain_rng = np.random.default_rng(
            np.random.SeedSequence([seed, _DOMAIN_TAG])
        )
        self._rates: dict[int, float] = {}
        self._count = 0

    # -- stream mechanics -------------------------------------------------

    def _next_index(self) -> int:
        if self.selection == "round_robin":
            return self._count % self.universe.universe
        return int(self._select_rng.integers(self.universe.universe))

    def _rate(self, k: int) -> float:
        rate = self._rates.get(k)
        if rate is None:
            rate = provider_rate(self.seed, k, self.alpha, self.beta)
            self._rates[k] = rate
        return rate

    def _validity_draw(self, k: int) -> bool:
        if self.validity == "bernoulli":
            return bool(self.rng.random() < self.p_valid)
        if self.validity == "per_provider":
            return bool(self.rng.random() < self._rate(k))
        # bursty: one switch draw, then one validity draw — the same two
        # main-stream draws in the same order as BurstyWorkload._validity.
        p_valid, stay = self._regimes[self._state]
        if self.rng.random() >= stay:
            self._state = 1 - self._state
            p_valid, stay = self._regimes[self._state]
        return bool(self.rng.random() < p_valid)

    def _one(self) -> TxSpec:
        k = self._next_index()
        provider = provider_id(k)
        spec = TxSpec(
            provider=provider,
            payload={"seq": self._count, "from": provider},
            is_valid=self._validity_draw(k),
        )
        if self.spec_hook is not None:
            spec = self.spec_hook(spec, self._count, self._domain_rng)
        self._count += 1
        return spec

    def take(self, n: int) -> list[TxSpec]:
        """The next ``n`` transactions."""
        return [self._one() for _ in range(n)]

    def for_round(self, round_number: int) -> list[TxSpec]:
        """One round's arrivals: ``arrivals.count_for_round`` then take.

        Raises:
            ConfigurationError: no arrival process was configured.
        """
        if self.arrivals is None:
            raise ConfigurationError(
                "for_round() needs an arrival process; pass arrivals= or use take()"
            )
        return self.take(self.arrivals.count_for_round(round_number))

    @property
    def emitted(self) -> int:
        """Transactions emitted so far."""
        return self._count
