"""Runtime safety auditor — per-round invariant monitor with structured verdicts.

Each governor runs a :class:`SafetyAuditor`; the harness (engine) runs
the cross-replica checks on top.  The monitored invariants:

* **cross-governor agreement** — no two committed blocks share a serial
  with different hashes.  At the protocol layer this reuses the
  :class:`~repro.ledger.store.BlockStore` publication rule (``publish``
  raises :class:`~repro.exceptions.AgreementError` on a conflicting
  same-serial block); the harness re-checks replicas after every round
  via :func:`repro.ledger.chain.check_agreement`.
* **block integrity** — serial/prev-hash link against the local tip, a
  recomputed Merkle root over the TXList, per-record provider
  signatures, and a cross-check against the published store's hash
  (which catches in-flight block tampering before it poisons the
  replica).
* **reputation-book invariants** — every weight positive and finite,
  every provider row normalizable, vector versions monotone.
* **Theorem-1 guardrail** — the measured governor loss never exceeds
  ``rwm_bound(s_min, r, beta)`` (:mod:`repro.core.regret`).
* **equivocation** — two *conflicting signed messages* from one node:
  a governor emitting commit votes for two different block hashes at
  one serial, or a collector emitting two different signed labels for
  one transaction.  These are the **provable** violations that justify
  quarantine: the evidence pair convinces any third party without
  trusting the accuser.

Verdicts are structured (:class:`AuditViolation` inside an
:class:`AuditReport`) and exported through ``repro.obs`` counters
(``audit_checks_total`` / ``audit_violations_total``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterable

from repro.core.regret import rwm_bound
from repro.crypto.merkle import MerkleTree
from repro.ledger.chain import Ledger, check_agreement
from repro.ledger.transaction import Label, LabeledTransaction
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.consensus.messages import CommitVote
    from repro.crypto.identity import IdentityManager
    from repro.ledger.block import Block

from repro.exceptions import AgreementError

__all__ = [
    "ViolationType",
    "AuditViolation",
    "AuditReport",
    "SafetyAuditor",
    "harness_audit",
]

#: Violation classes that indicate the *local replica's* safety is at
#: stake (as opposed to misbehaviour detected in, and attributed to,
#: another node).  The soak tests assert honest governors report none.
SAFETY_TYPES = frozenset(
    {
        "agreement",
        "chain-integrity",
        "merkle-root",
        "bad-signature",
        "reputation-invariant",
        "regret-bound",
        # Cross-shard atomicity: a half-applied or replayed receipt means
        # the sharded ledger family itself lost exactly-once semantics.
        "receipt-replay",
        "receipt-half-applied",
    }
)


class ViolationType(str, Enum):
    """What kind of invariant broke (the ``type`` label on counters)."""

    GOVERNOR_EQUIVOCATION = "governor-equivocation"
    COLLECTOR_EQUIVOCATION = "collector-equivocation"
    BLOCK_TAMPER = "block-tamper"
    CHAIN_INTEGRITY = "chain-integrity"
    MERKLE_ROOT = "merkle-root"
    BAD_SIGNATURE = "bad-signature"
    AGREEMENT = "agreement"
    REPUTATION_INVARIANT = "reputation-invariant"
    REGRET_BOUND = "regret-bound"
    RECEIPT_REPLAY = "receipt-replay"
    RECEIPT_HALF_APPLIED = "receipt-half-applied"
    RECEIPT_EQUIVOCATION = "receipt-equivocation"


@dataclass(frozen=True)
class AuditViolation:
    """One detected invariant violation.

    Attributes:
        type: The broken invariant.
        culprit: Node id the violation is attributed to (``"unknown"``
            when the evidence cannot name one — e.g. an in-flight
            tamper carries no valid signature).
        round_number: Protocol round during which it was detected.
        detail: Human-readable description.
        serial: Block serial involved, when applicable.
        provable: True iff the evidence is two conflicting *signed*
            messages — the quarantine bar.  Unattributable or merely
            observed anomalies never justify expelling a peer.
        evidence: The conflicting signed objects (votes or uploads).
    """

    type: ViolationType
    culprit: str
    round_number: int
    detail: str
    serial: int | None = None
    provable: bool = False
    evidence: tuple = ()

    @property
    def is_safety(self) -> bool:
        """Whether this violation compromises the local replica itself."""
        return self.type.value in SAFETY_TYPES


@dataclass
class AuditReport:
    """Structured verdict stream of one auditor (governor or harness)."""

    auditor: str
    violations: list[AuditViolation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def clean(self) -> bool:
        """True iff no violation of any kind was recorded."""
        return not self.violations

    def by_type(self, vtype: ViolationType) -> list[AuditViolation]:
        """All recorded violations of one type."""
        return [v for v in self.violations if v.type is vtype]

    def provable(self) -> list[AuditViolation]:
        """The violations that meet the quarantine bar."""
        return [v for v in self.violations if v.provable]

    def safety_violations(self) -> list[AuditViolation]:
        """Violations that compromise this replica's own safety.

        Attributed misbehaviour of *other* nodes (equivocation, block
        tampering that was contained) is excluded: detecting an attacker
        is the auditor working, not the replica failing.
        """
        return [v for v in self.violations if v.is_safety]


class SafetyAuditor:
    """Per-governor invariant monitor.

    Stateless with respect to the protocol (it only observes), stateful
    in its evidence buffers: signed commit votes per ``(governor,
    serial)`` and signed labels per ``(collector, tx_id)``, which is
    what turns a second conflicting message into a provable violation.

    Args:
        owner: The governor (or harness) this auditor reports for.
        im: Identity Manager handle for signature verification —
            evidence only counts when the signatures verify.
        obs: Metrics registry; ``audit_*`` counters (see
            OBSERVABILITY.md).
    """

    def __init__(
        self,
        owner: str,
        im: "IdentityManager | None" = None,
        obs: MetricsRegistry | None = None,
    ):
        self.owner = owner
        self.im = im
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.report = AuditReport(auditor=owner)
        # (governor, serial) -> {block_hash: CommitVote}
        self._votes: dict[tuple[str, int], dict[bytes, "CommitVote"]] = {}
        # (collector, tx_id) -> {label: LabeledTransaction}
        self._labels: dict[tuple[str, str], dict[Label, LabeledTransaction]] = {}
        # collector -> last observed reputation-vector version
        self._book_versions: dict[str, int] = {}
        self._m_checks = self.obs.counter(
            "audit_checks_total",
            "Auditor invariant checks executed, by check",
            labels=("check",),
        )
        self._m_violations = self.obs.counter(
            "audit_violations_total",
            "Invariant violations detected, by type",
            labels=("type",),
        )

    # -- bookkeeping ----------------------------------------------------

    def _check(self, name: str) -> None:
        self.report.checks_run += 1
        self._m_checks.labels(check=name).inc()

    def _record(self, violation: AuditViolation) -> AuditViolation:
        self.report.violations.append(violation)
        self._m_violations.labels(type=violation.type.value).inc()
        return violation

    # -- block integrity (Algorithm 2's append path) ---------------------

    def audit_block(
        self,
        block: "Block",
        expected_serial: int,
        expected_prev: bytes,
        round_number: int,
        store_hash: bytes | None = None,
    ) -> list[AuditViolation]:
        """Re-verify a delivered block before the replica appends it.

        Returns the violations found (empty on a clean block).  A
        ``BLOCK_TAMPER`` result means the delivered copy's hash differs
        from the published store's same-serial block — the caller should
        append the authentic copy instead of the delivered one.
        """
        found: list[AuditViolation] = []
        self._check("block-link")
        if block.serial != expected_serial:
            found.append(
                AuditViolation(
                    type=ViolationType.CHAIN_INTEGRITY,
                    culprit=block.proposer,
                    round_number=round_number,
                    serial=block.serial,
                    detail=f"expected serial {expected_serial}, got {block.serial}",
                )
            )
        if block.prev_hash != expected_prev:
            found.append(
                AuditViolation(
                    type=ViolationType.CHAIN_INTEGRITY,
                    culprit=block.proposer,
                    round_number=round_number,
                    serial=block.serial,
                    detail=f"block {block.serial} prev_hash does not extend the tip",
                )
            )
        self._check("merkle-root")
        recomputed = MerkleTree(list(block.tx_list)).root
        if recomputed != block.tx_root:
            found.append(
                AuditViolation(
                    type=ViolationType.MERKLE_ROOT,
                    culprit=block.proposer,
                    round_number=round_number,
                    serial=block.serial,
                    detail=f"block {block.serial} Merkle root mismatch",
                )
            )
        if self.im is not None:
            self._check("record-signatures")
            for rec in block.tx_list:
                tx = rec.tx
                if not self.im.verify(
                    tx.provider, tx.signed_message_bytes(), tx.provider_signature
                ):
                    found.append(
                        AuditViolation(
                            type=ViolationType.BAD_SIGNATURE,
                            culprit=block.proposer,
                            round_number=round_number,
                            serial=block.serial,
                            detail=(
                                f"record {tx.tx_id} in block {block.serial} carries "
                                "an invalid provider signature"
                            ),
                        )
                    )
        if store_hash is not None:
            self._check("store-crosscheck")
            if block.hash() != store_hash:
                found.append(
                    AuditViolation(
                        type=ViolationType.BLOCK_TAMPER,
                        culprit="unknown",
                        round_number=round_number,
                        serial=block.serial,
                        detail=(
                            f"delivered block {block.serial} differs from the "
                            "published store copy (in-flight tampering)"
                        ),
                    )
                )
        for violation in found:
            self._record(violation)
        return found

    # -- commit votes (governor equivocation) ----------------------------

    def ingest_vote(
        self,
        vote: "CommitVote",
        own_hash: bytes | None,
        round_number: int,
    ) -> tuple[AuditViolation | None, bool]:
        """Record one signed commit vote; detect governor equivocation.

        Returns ``(violation, mismatch)``: ``violation`` is a provable
        :data:`~ViolationType.GOVERNOR_EQUIVOCATION` when this auditor
        now holds two verified votes from one governor for different
        hashes at one serial; ``mismatch`` is True when the vote
        contradicts this replica's own committed hash — the signal to
        forward the vote to peers as evidence (so the subset that
        received the *other* equivocating vote can complete the proof).
        """
        self._check("commit-vote")
        if self.im is not None and not self.im.verify(
            vote.governor, vote.signed_message(), vote.signature
        ):
            # Unverifiable votes are no evidence of anything; drop.
            self._record(
                AuditViolation(
                    type=ViolationType.BAD_SIGNATURE,
                    culprit="unknown",
                    round_number=round_number,
                    serial=vote.serial,
                    detail=(
                        f"commit vote claiming {vote.governor} for serial "
                        f"{vote.serial} failed signature verification"
                    ),
                )
            )
            return None, False
        key = (vote.governor, vote.serial)
        held = self._votes.setdefault(key, {})
        held.setdefault(vote.block_hash, vote)
        mismatch = own_hash is not None and vote.block_hash != own_hash
        if len(held) > 1:
            pair = tuple(held.values())[:2]
            return (
                self._record(
                    AuditViolation(
                        type=ViolationType.GOVERNOR_EQUIVOCATION,
                        culprit=vote.governor,
                        round_number=round_number,
                        serial=vote.serial,
                        detail=(
                            f"governor {vote.governor} signed conflicting commit "
                            f"votes for serial {vote.serial}"
                        ),
                        provable=True,
                        evidence=pair,
                    )
                ),
                mismatch,
            )
        return None, mismatch

    # -- uploads (collector equivocation) --------------------------------

    def observe_upload(
        self, upload: LabeledTransaction, round_number: int
    ) -> AuditViolation | None:
        """Record one signed collector label; detect label equivocation.

        Only uploads whose collector signature verifies are evidence;
        an in-flight tamper (stripped signature, flipped label) fails
        verification and therefore can never *frame* a collector.
        """
        self._check("upload-label")
        if self.im is not None and not self.im.verify(
            upload.collector, upload.signed_message_bytes(), upload.collector_signature
        ):
            return None
        key = (upload.collector, upload.tx.tx_id)
        held = self._labels.setdefault(key, {})
        held.setdefault(upload.label, upload)
        if len(held) > 1:
            pair = tuple(held.values())[:2]
            return self._record(
                AuditViolation(
                    type=ViolationType.COLLECTOR_EQUIVOCATION,
                    culprit=upload.collector,
                    round_number=round_number,
                    detail=(
                        f"collector {upload.collector} signed conflicting labels "
                        f"for tx {upload.tx.tx_id}"
                    ),
                    provable=True,
                    evidence=pair,
                )
            )
        return None

    # -- reputation-book invariants --------------------------------------

    def audit_book(self, book, round_number: int) -> list[AuditViolation]:
        """Check the reputation-book invariants after a round.

        Weights positive and finite, per-collector rows normalizable
        (positive finite sum), and vector versions monotone across
        calls (the multiplicative update only ever *advances* state).
        """
        found: list[AuditViolation] = []
        self._check("reputation-book")
        for collector in book.collectors():
            vector = book.vector(collector)
            total = 0.0
            for provider, weight in vector.provider_weights.items():
                if not (weight > 0.0 and math.isfinite(weight)):
                    found.append(
                        AuditViolation(
                            type=ViolationType.REPUTATION_INVARIANT,
                            culprit=book.governor,
                            round_number=round_number,
                            detail=(
                                f"weight w[{collector}][{provider}] = {weight!r} "
                                "is not a positive finite number"
                            ),
                        )
                    )
                else:
                    total += weight
            if vector.provider_weights and not (total > 0.0 and math.isfinite(total)):
                found.append(
                    AuditViolation(
                        type=ViolationType.REPUTATION_INVARIANT,
                        culprit=book.governor,
                        round_number=round_number,
                        detail=f"row of {collector} is not normalizable (sum {total!r})",
                    )
                )
            version = vector._version
            last = self._book_versions.get(collector)
            if last is not None and version < last:
                found.append(
                    AuditViolation(
                        type=ViolationType.REPUTATION_INVARIANT,
                        culprit=book.governor,
                        round_number=round_number,
                        detail=(
                            f"vector version of {collector} went backwards "
                            f"({last} -> {version})"
                        ),
                    )
                )
            self._book_versions[collector] = version
        for violation in found:
            self._record(violation)
        return found

    # -- harness-level checks --------------------------------------------

    def audit_agreement(
        self, ledgers: Iterable[Ledger], round_number: int
    ) -> AuditViolation | None:
        """Cross-replica agreement over the given (honest, live) ledgers."""
        self._check("agreement")
        try:
            check_agreement(list(ledgers))
        except AgreementError as exc:
            return self._record(
                AuditViolation(
                    type=ViolationType.AGREEMENT,
                    culprit="unknown",
                    round_number=round_number,
                    detail=str(exc),
                )
            )
        return None

    def audit_regret(
        self,
        measured_loss: float,
        r: int,
        beta: float,
        round_number: int,
        s_min: float = 0.0,
        culprit: str = "harness",
    ) -> AuditViolation | None:
        """Theorem-1 guardrail: flag runs whose loss exceeds ``rwm_bound``."""
        self._check("regret-bound")
        bound = rwm_bound(s_min=s_min, r=r, beta=beta)
        if measured_loss > bound:
            return self._record(
                AuditViolation(
                    type=ViolationType.REGRET_BOUND,
                    culprit=culprit,
                    round_number=round_number,
                    detail=(
                        f"measured loss {measured_loss:.4f} exceeds "
                        f"rwm_bound(s_min={s_min}, r={r}, beta={beta}) = {bound:.4f}"
                    ),
                )
            )
        return None


def harness_audit(
    owner: str,
    ledgers: Iterable[Ledger],
    governors: Iterable,
    r: int,
    beta: float,
    round_number: int,
    s_min: float = 0.0,
    obs: MetricsRegistry | None = None,
) -> AuditReport:
    """One-shot harness audit over a finished (or paused) run.

    Checks cross-replica agreement and the Theorem-1 guardrail against
    the worst (maximum) governor ``expected_loss``.  Used by the
    in-process engine's ``finalize`` and by benches; the networked
    engine runs the same checks incrementally per round.
    """
    auditor = SafetyAuditor(owner=owner, im=None, obs=obs)
    auditor.audit_agreement(ledgers, round_number)
    losses = [g.metrics.expected_loss for g in governors]
    if losses:
        auditor.audit_regret(
            max(losses), r=r, beta=beta, round_number=round_number, s_min=s_min
        )
    return auditor.report
