"""Runtime knobs for the safety auditor.

Mirrors :mod:`repro.perf`: a frozen config dataclass, a process-wide
``ACTIVE`` instance, and scoped/global override helpers.  The auditor is
**on by default** — every networked engine constructed without an
explicit ``audit=`` argument snapshots the active config — and force-
disableable for the bit-identity regression tests
(``tests/test_audit.py``): with no violations present, a seeded run
produces bit-identical ledgers whether the auditor is on or off,
because audit traffic (commit votes) rides a fixed-delay, fault-exempt
path that consumes no RNG from any simulation stream.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

__all__ = [
    "AuditConfig",
    "ACTIVE",
    "get_config",
    "set_config",
    "configure",
    "overridden",
    "disabled",
]


@dataclass(frozen=True)
class AuditConfig:
    """Feature flags for each auditor check, all on by default.

    Attributes:
        enabled: Master switch.  Off, the engine performs no audit work
            at all (no votes, no checks, no quarantine) and behaves
            bit-identically to the pre-auditor implementation.
        commit_votes: Governors exchange signed per-block commit votes
            and detect governor equivocation (two conflicting signed
            votes for one serial — the provable violation).
        block_integrity: Re-verify every delivered block before append:
            serial/prev-hash link, recomputed Merkle root, per-record
            provider signatures, and the published-store cross-check
            that contains in-flight block tampering.
        reputation_invariants: Per-round reputation-book checks —
            weights positive and finite, rows normalizable, vector
            versions monotonic.
        theorem_guardrail: Flag any run whose measured governor loss
            exceeds ``rwm_bound(s_min, r, beta)`` (Theorem 1).
        quarantine: Act on provable violations — suppress the culprit's
            traffic and exclude it from leader election.  Off, the
            auditor still detects and reports, but never contains.
        s_min: The best collector's assumed cumulative loss fed to the
            Theorem-1 guardrail; 0 encodes the paper's "at least one
            well-behaved collector" premise.
    """

    enabled: bool = True
    commit_votes: bool = True
    block_integrity: bool = True
    reputation_invariants: bool = True
    theorem_guardrail: bool = True
    quarantine: bool = True
    s_min: float = 0.0


#: The process-wide active configuration.  Engines snapshot it at
#: construction; replace it only through :func:`set_config` /
#: :func:`configure` / the context managers.
ACTIVE = AuditConfig()


def get_config() -> AuditConfig:
    """The currently active :class:`AuditConfig`."""
    return ACTIVE


def set_config(config: AuditConfig) -> None:
    """Install ``config`` as the process-wide active configuration."""
    global ACTIVE
    ACTIVE = config


def configure(**knobs) -> AuditConfig:
    """Flip individual knobs on the active configuration and return it."""
    set_config(replace(ACTIVE, **knobs))
    return ACTIVE


@contextmanager
def overridden(**knobs) -> Iterator[AuditConfig]:
    """Scoped override of individual knobs; restores the prior config."""
    prior = ACTIVE
    set_config(replace(prior, **knobs))
    try:
        yield ACTIVE
    finally:
        set_config(prior)


@contextmanager
def disabled() -> Iterator[AuditConfig]:
    """Scoped reference mode with the auditor fully off."""
    prior = ACTIVE
    set_config(AuditConfig(enabled=False))
    try:
        yield ACTIVE
    finally:
        set_config(prior)
