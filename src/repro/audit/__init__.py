"""Runtime safety auditor: invariant monitoring, structured verdicts, quarantine feed.

See :mod:`repro.audit.auditor` for the monitored invariants and
:mod:`repro.audit.config` for the ``repro.perf``-style switchboard
(auditor on by default, force-disableable, bit-identical seeded runs
either way when no violations occur).
"""

from repro.audit.auditor import (
    AuditReport,
    AuditViolation,
    SafetyAuditor,
    ViolationType,
    harness_audit,
)
# NOTE: read the live switchboard via ``repro.audit.config`` (e.g.
# ``config.get_config()``) — re-exporting ``ACTIVE`` here would freeze a
# stale binding the moment ``configure()`` replaces it.
from repro.audit.config import (
    AuditConfig,
    configure,
    disabled,
    get_config,
    overridden,
    set_config,
)
from repro.audit.xshard import CrossShardAuditor

__all__ = [
    "AuditConfig",
    "AuditReport",
    "AuditViolation",
    "CrossShardAuditor",
    "SafetyAuditor",
    "ViolationType",
    "harness_audit",
    "configure",
    "disabled",
    "get_config",
    "overridden",
    "set_config",
]
