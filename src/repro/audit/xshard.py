"""Cross-shard atomicity auditor.

The :class:`repro.sharding.ShardCoordinator` commits a cross-shard
transaction in two legs: on the home shard as an ordinary record, then
on the remote shard as a signed receipt.  :class:`CrossShardAuditor`
watches both legs and enforces the atomicity invariant:

* **never half-applied** — every home-committed cross-shard transaction
  eventually has exactly one remote commit (checked at
  :meth:`finalize`), and no remote commit exists without a matching
  home commit;
* **replay-proof** — a receipt id commits at most once on its remote
  shard (``receipt-replay``);
* **receipt equivocation** — two *validly signed* receipts with the
  same id but conflicting content are a provable violation attributed
  to the signing proposer, mirroring the commit-vote equivocation bar
  of :class:`~repro.audit.auditor.SafetyAuditor`;
* **bad signatures** — a receipt whose proposer signature does not
  verify against the home shard's identity manager never counts as a
  home commit.

Verdicts reuse the structured :class:`~repro.audit.auditor.AuditReport`
stream and the ``audit_checks_total`` / ``audit_violations_total``
counter families, so shard runs surface in the same telemetry as every
other auditor.
"""

from __future__ import annotations

from repro.audit.auditor import AuditReport, AuditViolation, ViolationType
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["CrossShardAuditor"]


class CrossShardAuditor:
    """Harness-side monitor of the two-leg cross-shard commit flow."""

    def __init__(self, obs: MetricsRegistry | None = None):
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.report = AuditReport(auditor="xshard")
        # receipt_id -> the receipt as first (validly) home-committed.
        self._home: dict[str, object] = {}
        # receipt_id -> (remote shard, serial) of the first remote commit.
        self._remote: dict[str, tuple[int, int]] = {}
        self._m_checks = self.obs.counter(
            "audit_checks_total",
            "Auditor invariant checks executed, by check",
            labels=("check",),
        )
        self._m_violations = self.obs.counter(
            "audit_violations_total",
            "Invariant violations detected, by type",
            labels=("type",),
        )

    def _check(self, name: str) -> None:
        self.report.checks_run += 1
        self._m_checks.labels(check=name).inc()

    def _record(self, violation: AuditViolation) -> AuditViolation:
        self.report.violations.append(violation)
        self._m_violations.labels(type=violation.type.value).inc()
        return violation

    # -- the two commit legs --------------------------------------------

    def record_home_commit(
        self, receipt, im, round_number: int
    ) -> AuditViolation | None:
        """Register a receipt minted from a home-shard commit.

        ``im`` is the *home* shard's identity manager — the proposer
        signature must verify there before the receipt may be relayed.
        Returns a violation (also recorded) when the signature fails or
        a conflicting receipt already exists for the id.
        """
        self._check("receipt-signature")
        if not im.verify(receipt.proposer, receipt.signed_message(), receipt.signature):
            return self._record(
                AuditViolation(
                    type=ViolationType.BAD_SIGNATURE,
                    culprit=receipt.proposer,
                    round_number=round_number,
                    detail=f"receipt {receipt.receipt_id} signature failed",
                    serial=receipt.home_serial,
                )
            )
        self._check("receipt-equivocation")
        known = self._home.get(receipt.receipt_id)
        if known is not None and known != receipt:
            return self._record(
                AuditViolation(
                    type=ViolationType.RECEIPT_EQUIVOCATION,
                    culprit=receipt.proposer,
                    round_number=round_number,
                    detail=(
                        f"two signed receipts for id {receipt.receipt_id} "
                        "with conflicting content"
                    ),
                    serial=receipt.home_serial,
                    provable=True,
                    evidence=(known, receipt),
                )
            )
        self._home.setdefault(receipt.receipt_id, receipt)
        return None

    def record_remote_commit(
        self, receipt_id: str, shard: int, serial: int, round_number: int
    ) -> AuditViolation | None:
        """Register a receipt record observed on a remote-shard chain."""
        self._check("receipt-replay")
        if receipt_id in self._remote:
            prev_shard, prev_serial = self._remote[receipt_id]
            return self._record(
                AuditViolation(
                    type=ViolationType.RECEIPT_REPLAY,
                    culprit=f"shard-{shard}",
                    round_number=round_number,
                    detail=(
                        f"receipt {receipt_id} committed twice: shard "
                        f"{prev_shard} serial {prev_serial}, then shard "
                        f"{shard} serial {serial}"
                    ),
                    serial=serial,
                )
            )
        self._remote[receipt_id] = (shard, serial)
        self._check("receipt-has-home")
        if receipt_id not in self._home:
            return self._record(
                AuditViolation(
                    type=ViolationType.RECEIPT_HALF_APPLIED,
                    culprit=f"shard-{shard}",
                    round_number=round_number,
                    detail=(
                        f"receipt {receipt_id} committed on shard {shard} "
                        "without a home-shard commit"
                    ),
                    serial=serial,
                )
            )
        return None

    # -- run-level verdicts ---------------------------------------------

    def pending(self) -> list[str]:
        """Receipt ids home-committed but not yet remote-committed."""
        return sorted(rid for rid in self._home if rid not in self._remote)

    def atomicity_violations(self) -> list[AuditViolation]:
        """Half-applied or replayed receipts recorded so far."""
        return [
            v
            for v in self.report.violations
            if v.type
            in (ViolationType.RECEIPT_REPLAY, ViolationType.RECEIPT_HALF_APPLIED)
        ]

    def finalize(self, round_number: int) -> AuditReport:
        """Close the books: every home commit must have its remote leg.

        Call after the coordinator has flushed in-flight relays; any
        receipt still missing its remote commit is a half-applied
        cross-shard transaction.
        """
        for rid in self.pending():
            self._check("receipt-completed")
            self._record(
                AuditViolation(
                    type=ViolationType.RECEIPT_HALF_APPLIED,
                    culprit=f"shard-{self._home[rid].remote_shard}",
                    round_number=round_number,
                    detail=(
                        f"receipt {rid} home-committed but never committed "
                        "on its remote shard"
                    ),
                    serial=self._home[rid].home_serial,
                )
            )
        return self.report
