"""Agent-level Byzantine collector strategies.

These extend the conduct models in :mod:`repro.agents.behaviors` with
the coordinated and adaptive attackers of the adversary model (see
DESIGN.md).  They rely on the two optional behaviour hooks consumed by
:meth:`repro.agents.collector.Collector.process_all`:

* ``label_for_tx(tx, true_valid, rng)`` — provider-aware labelling;
* ``conflicting_label_for(tx, primary_label, rng)`` — a second signed
  upload with a different label (provable equivocation).

All strategies implement the plain
:class:`~repro.agents.behaviors.CollectorBehavior` protocol too, so
they drop into every existing engine unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label, SignedTransaction

__all__ = [
    "CartelPlan",
    "ColludingCollectorBehavior",
    "AdaptiveAttackerBehavior",
    "TwoFacedCollectorBehavior",
]


@dataclass(frozen=True)
class CartelPlan:
    """Shared coordination state of a colluding collector cartel.

    One plan instance is handed to every member, so the collusion is
    *consistent by construction*: every member conceals (or inverts)
    the same target provider's transactions while labelling everyone
    else honestly — the coordinated-concealment attack the per-provider
    reputation rows exist to absorb.

    Attributes:
        target_provider: The provider the cartel acts against.
        mode: ``"conceal"`` (stay silent on the target's transactions)
            or ``"invert"`` (upload the wrong label for them).
    """

    target_provider: str
    mode: str = "conceal"

    def __post_init__(self) -> None:
        if self.mode not in ("conceal", "invert"):
            raise ConfigurationError(
                f"cartel mode must be 'conceal' or 'invert', got {self.mode!r}"
            )


@dataclass
class ColludingCollectorBehavior:
    """One member of a :class:`CartelPlan` cartel.

    Honest on every transaction except the target provider's — those it
    conceals or inverts per the shared plan.  Because the misconduct is
    provider-selective, it is invisible to any screening that only
    aggregates per collector; the per-provider weight rows are what
    eventually starve the cartel's influence on the target.
    """

    plan: CartelPlan
    suppressed: int = field(default=0, repr=False)

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        # Provider-blind fallback (in-process paths): honest.
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False

    def label_for_tx(
        self, tx: SignedTransaction, true_valid: bool, rng: np.random.Generator
    ) -> Label | None:
        if tx.provider != self.plan.target_provider:
            return Label.from_bool(true_valid)
        self.suppressed += 1
        if self.plan.mode == "conceal":
            return None
        return Label.from_bool(not true_valid)


@dataclass
class AdaptiveAttackerBehavior:
    """Defects only while its *current* reputation can absorb it.

    The strategic mirror of
    :class:`~repro.agents.behaviors.SleeperBehavior`: instead of a fixed
    honest prefix, it reads the governor's live weight row through a
    bound probe (:func:`repro.byzantine.scenario.reputation_probe`) and
    misreports with probability ``p_defect`` only while its mean weight
    exceeds ``defect_above``.  The multiplicative-weights update makes
    this self-defeating — every defection burns the very capital the
    strategy conditions on, which is precisely the Theorem-1 argument —
    and the soak test pins that down.

    Before a probe is bound (or if it reports no standing) the attacker
    plays honest.
    """

    defect_above: float = 1.0
    p_defect: float = 0.5
    weight_probe: Callable[[], float] | None = None
    defections: int = field(default=0, repr=False)

    def bind_probe(self, probe: Callable[[], float]) -> None:
        """Attach the live reputation read-out this attacker conditions on."""
        self.weight_probe = probe

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        weight = 0.0 if self.weight_probe is None else float(self.weight_probe())
        if weight > self.defect_above and rng.random() < self.p_defect:
            self.defections += 1
            return Label.from_bool(not true_valid)
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


@dataclass
class TwoFacedCollectorBehavior:
    """Signs *two conflicting labels* for every ``period``-th transaction.

    Both uploads carry valid collector signatures, so any single
    governor holding the pair has a provable
    :data:`~repro.audit.ViolationType.COLLECTOR_EQUIVOCATION` — the
    cheapest way to earn a quarantine, and the regression fixture for
    the two-signed-messages evidence rule.
    """

    period: int = 1
    _count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False

    def conflicting_label_for(
        self, tx: SignedTransaction, primary: Label, rng: np.random.Generator
    ) -> Label | None:
        self._count += 1
        if self._count % self.period == 0:
            return Label(-int(primary))
        return None
