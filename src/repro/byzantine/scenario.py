"""Scripted Byzantine scenarios against the networked engine.

Helpers that install concrete attacks on a
:class:`~repro.core.netengine.NetworkedProtocolEngine` without the
engine knowing anything about them — the attack surface is exactly the
public hooks an operator of a single Byzantine node would control
(its own vote behaviour, its own reputation read-out).
"""

from __future__ import annotations

import hashlib

__all__ = ["install_equivocation", "reputation_probe"]


def install_equivocation(engine, gid: str, serial: int) -> None:
    """Make governor ``gid`` equivocate its commit vote at ``serial``.

    At the target serial the governor sends its *real* block hash to the
    first half of its peers and a fabricated hash — **validly signed**,
    which is what makes the resulting evidence pair provable — to the
    rest; every other serial it votes honestly.  The split guarantees
    both vote flavours exist in the network, so the auditor's
    evidence-forwarding path must fire for anyone to hold the pair.
    """

    def strategy(_gid: str, block, peers):
        real = block.hash()
        if block.serial != serial or len(peers) < 2:
            vote = engine.make_commit_vote(gid, block.serial, real)
            return {peer: vote for peer in peers}
        fake = hashlib.sha256(b"equivocate|" + real).digest()
        honest_vote = engine.make_commit_vote(gid, block.serial, real)
        fake_vote = engine.make_commit_vote(gid, block.serial, fake)
        half = len(peers) // 2
        return {
            peer: (honest_vote if i < half else fake_vote)
            for i, peer in enumerate(peers)
        }

    engine.set_vote_strategy(gid, strategy)


def reputation_probe(engine, gid: str, cid: str):
    """A live weight read-out for the adaptive attacker.

    Returns a zero-argument callable yielding collector ``cid``'s mean
    per-provider weight in governor ``gid``'s book right now (0.0 when
    retired) — the signal
    :class:`~repro.byzantine.strategies.AdaptiveAttackerBehavior`
    conditions its defections on.
    """

    def probe() -> float:
        book = engine.governors[gid].book
        if not book.is_registered(cid):
            return 0.0
        weights = list(book.vector(cid).provider_weights.values())
        if not weights:
            return 0.0
        return float(sum(weights) / len(weights))

    return probe
