"""Byzantine adversary suite: tampering, strategies, scripted scenarios.

Three escalating adversary layers over the fault subsystem
(:mod:`repro.faults`), all seeded and deterministic:

* :mod:`~repro.byzantine.tampering` — in-flight *message* corruption
  (signature stripping, label flipping, replays, block corruption),
  installed as the :class:`~repro.faults.FaultInjector`'s ``tamperer``;
* :mod:`~repro.byzantine.strategies` — *agent-level* misbehaviour:
  a colluding collector cartel targeting one provider, an adaptive
  attacker conditioning on its own current reputation, and a two-faced
  collector that signs conflicting labels (provable equivocation);
* :mod:`~repro.byzantine.scenario` — scripted attacks against the
  networked engine (commit-vote equivocation, reputation probes).

The :mod:`repro.audit` layer is the defence these adversaries exist to
exercise; ``tests/test_byzantine.py`` and the chaos soak pin down what
each attack can and cannot achieve.
"""

from repro.byzantine.strategies import (
    AdaptiveAttackerBehavior,
    CartelPlan,
    ColludingCollectorBehavior,
    TwoFacedCollectorBehavior,
)
from repro.byzantine.tampering import MessageTamperer, TamperSpec, TamperStats
from repro.byzantine.scenario import install_equivocation, reputation_probe

__all__ = [
    "AdaptiveAttackerBehavior",
    "CartelPlan",
    "ColludingCollectorBehavior",
    "TwoFacedCollectorBehavior",
    "MessageTamperer",
    "TamperSpec",
    "TamperStats",
    "install_equivocation",
    "reputation_probe",
]
