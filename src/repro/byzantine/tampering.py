"""Seeded in-flight message tampering (the Byzantine network adversary).

A :class:`MessageTamperer` plugs into the
:class:`~repro.faults.FaultInjector` (``install_faults(plan,
tamperer=...)``) and rewrites payloads *in flight* — the model of a
compromised relay rather than a misbehaving agent:

* **signature stripping** — the collector signature on an upload is
  replaced with a zeroed tag, so governors drop it unattributed;
* **label flipping** — the upload's ±1 label is inverted *without*
  re-signing, so the original collector signature no longer covers the
  content.  Governors reject it, which is the point: a network attacker
  without a collector's key cannot frame that collector;
* **replay** — a previously delivered upload is substituted for the
  current one, modelling stale/duplicated reports (defused downstream
  by the engine's pack-time on-chain dedup);
* **block corruption** — a record is dropped from (or the prev link
  bent on) a block in flight; the safety auditor's store cross-check
  catches the hash mismatch and appends the authentic published copy.

Payloads are rewritten through their transport wrappers
(:class:`~repro.network.reliable.ReliableEnvelope`,
:class:`~repro.network.broadcast.SequencedPayload`) with
``dataclasses.replace``, so seqnos, msg_ids, and acks stay intact —
tampering corrupts content, never the carrier.  The tamperer draws from
its **own** seeded RNG: adding it to a fault plan perturbs neither the
injector's omission stream nor any other simulation RNG.

One knowingly modelled weakness: a tampered upload riding the reliable
channel is still *acked* by its receiver (the ack covers the envelope,
not the content), so it is never retransmitted — content tampering
defeats ack/retransmit reliability, exactly as it would in a real
deployment without end-to-end authenticated acks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable

import numpy as np

from repro.crypto.signatures import Signature
from repro.exceptions import ConfigurationError
from repro.ledger.block import Block
from repro.ledger.transaction import Label, LabeledTransaction
from repro.network.broadcast import SequencedPayload
from repro.network.reliable import ReliableEnvelope
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["TamperSpec", "TamperStats", "MessageTamperer"]

#: The zeroed tag a stripped signature carries (format-valid, never verifies).
_STRIPPED_TAG = b"\x00" * 32


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class TamperSpec:
    """Per-message tampering probabilities.

    Attributes:
        strip_signature: P[upload's collector signature zeroed].
        flip_label: P[upload's label inverted, signature kept].
        replay: P[upload replaced by a stale previously-seen one].
        corrupt_block: P[block content corrupted in flight].
        replay_horizon: How many past uploads per receiver are kept as
            replay candidates.
    """

    strip_signature: float = 0.0
    flip_label: float = 0.0
    replay: float = 0.0
    corrupt_block: float = 0.0
    replay_horizon: int = 32

    def __post_init__(self) -> None:
        _check_prob("strip_signature", self.strip_signature)
        _check_prob("flip_label", self.flip_label)
        _check_prob("replay", self.replay)
        _check_prob("corrupt_block", self.corrupt_block)
        if self.replay_horizon < 1:
            raise ConfigurationError(
                f"replay_horizon must be >= 1, got {self.replay_horizon}"
            )

    @property
    def is_clean(self) -> bool:
        """Whether this spec tampers with nothing."""
        return (
            self.strip_signature == 0.0
            and self.flip_label == 0.0
            and self.replay == 0.0
            and self.corrupt_block == 0.0
        )


@dataclass
class TamperStats:
    """What the tamperer actually did, for reports and assertions."""

    inspected: int = 0
    stripped: int = 0
    flipped: int = 0
    replayed: int = 0
    blocks_corrupted: int = 0

    @property
    def total(self) -> int:
        """All substitutions performed."""
        return self.stripped + self.flipped + self.replayed + self.blocks_corrupted


class MessageTamperer:
    """Rewrites eligible payloads in flight per a :class:`TamperSpec`.

    Args:
        spec: What to tamper with, and how often.
        seed: Dedicated RNG seed (independent of every other stream).
        obs: Metrics registry; registers ``byz_messages_seen_total`` and
            ``byz_tampered_total{mode}`` (see OBSERVABILITY.md).
    """

    def __init__(
        self,
        spec: TamperSpec,
        seed: int = 0,
        obs: MetricsRegistry | None = None,
    ):
        self.spec = spec
        self.stats = TamperStats()
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._rng = np.random.default_rng(seed)
        # receiver -> recent uploads, the replay candidate pool
        self._history: dict[str, deque[LabeledTransaction]] = {}
        self._m_seen = self.obs.counter(
            "byz_messages_seen_total",
            "Messages inspected by the Byzantine tamperer",
        )
        self._m_tampered = self.obs.counter(
            "byz_tampered_total",
            "Messages rewritten in flight, by tamper mode",
            labels=("mode",),
        )

    # -- wrapper plumbing ------------------------------------------------

    def _unwrap(self, payload: Any) -> tuple[Any, Callable[[Any], Any]]:
        """Innermost content plus a rebuilder that re-wraps a substitute."""
        if isinstance(payload, ReliableEnvelope):
            inner, rebuild = self._unwrap(payload.body)
            return inner, lambda new: dc_replace(payload, body=rebuild(new))
        if isinstance(payload, SequencedPayload):
            inner, rebuild = self._unwrap(payload.body)
            return inner, lambda new: dc_replace(payload, body=rebuild(new))
        return payload, lambda new: new

    def _remember(self, receiver: str, upload: LabeledTransaction) -> None:
        history = self._history.get(receiver)
        if history is None:
            history = deque(maxlen=self.spec.replay_horizon)
            self._history[receiver] = history
        history.append(upload)

    # -- the injector hook -----------------------------------------------

    def maybe_tamper(self, sender: str, receiver: str, payload: Any) -> Any | None:
        """Decide one message's fate; return the substitute or ``None``.

        Called by :meth:`repro.faults.FaultInjector._filter` for every
        non-exempt message; the substitution (if any) flows through
        :attr:`~repro.faults.plan.FaultAction.replace`.
        """
        self.stats.inspected += 1
        self._m_seen.inc()
        inner, rebuild = self._unwrap(payload)
        spec = self.spec
        if isinstance(inner, Block):
            if spec.corrupt_block and self._rng.random() < spec.corrupt_block:
                self.stats.blocks_corrupted += 1
                self._m_tampered.labels(mode="corrupt-block").inc()
                return rebuild(self._corrupt(inner))
            return None
        if not isinstance(inner, LabeledTransaction):
            return None
        if spec.replay and self._rng.random() < spec.replay:
            history = self._history.get(receiver)
            if history:
                stale = history[int(self._rng.integers(len(history)))]
                self._remember(receiver, inner)
                self.stats.replayed += 1
                self._m_tampered.labels(mode="replay").inc()
                return rebuild(stale)
        self._remember(receiver, inner)
        if spec.strip_signature and self._rng.random() < spec.strip_signature:
            self.stats.stripped += 1
            self._m_tampered.labels(mode="strip-signature").inc()
            stripped = dc_replace(
                inner,
                collector_signature=Signature(
                    signer=inner.collector, tag=_STRIPPED_TAG
                ),
            )
            return rebuild(stripped)
        if spec.flip_label and self._rng.random() < spec.flip_label:
            self.stats.flipped += 1
            self._m_tampered.labels(mode="flip-label").inc()
            # The original signature stays: it no longer covers the
            # content, so governors drop the upload — the attacker
            # cannot frame the collector without its key.
            flipped = dc_replace(inner, label=Label(-int(inner.label)))
            return rebuild(flipped)
        return None

    def _corrupt(self, block: Block) -> Block:
        """A content-corrupted copy of ``block`` (hash necessarily differs)."""
        if block.tx_list:
            return dc_replace(block, tx_list=block.tx_list[:-1])
        bent = bytes([block.prev_hash[0] ^ 0xFF]) + block.prev_hash[1:]
        return dc_replace(block, prev_hash=bent)
