"""Node agents: providers, collectors (with behaviour models), governors."""

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    CollectorBehavior,
    ConcealBehavior,
    FlipFlopBehavior,
    ForgeBehavior,
    HonestBehavior,
    MisreportBehavior,
    MixedAdversary,
    SleeperBehavior,
    behavior_registry,
)
from repro.agents.collector import Collector
from repro.agents.governor import Governor, GovernorMetrics
from repro.agents.provider import Provider

__all__ = [
    "AlwaysInvertBehavior",
    "Collector",
    "CollectorBehavior",
    "ConcealBehavior",
    "FlipFlopBehavior",
    "ForgeBehavior",
    "Governor",
    "GovernorMetrics",
    "HonestBehavior",
    "MisreportBehavior",
    "MixedAdversary",
    "Provider",
    "SleeperBehavior",
    "behavior_registry",
]
