"""Governor agents — screening, reputation, ledger, argues.

A governor ingests collector uploads (verifying signatures and catching
forgeries — Algorithm 2's top half), screens each transaction after its
Δ window closes (Algorithm 2's ``endtime`` arm), updates reputations
(Algorithm 3), maintains his ledger replica, and serves ``argue``
requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.arguing import ArgueManager
from repro.core.params import ProtocolParams
from repro.core.reputation import ReputationBook
from repro.core.screening import (
    ReportSet,
    ScreeningDecision,
    decision_to_record,
    screen_transaction,
)
from repro.core.updating import apply_checked_update, apply_forge_update, apply_reveal_update
from repro.crypto.identity import IdentityManager
from repro.crypto.signatures import SigningKey
from repro.exceptions import ProtocolViolationError
from repro.ledger.chain import Ledger
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    LabeledTransaction,
    SignedTransaction,
    TxRecord,
)
from repro.ledger.validation import CountingOracle, ValidityOracle
from repro.network.topology import Topology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["GovernorMetrics", "Governor"]


@dataclass
class GovernorMetrics:
    """What this governor spent and suffered, for the experiments.

    ``expected_loss`` accumulates the theorem's ``L_t`` per unchecked
    transaction; ``realized_loss`` adds 2 per unchecked record whose
    truth later proved the recorded (invalid) label wrong; ``mistakes``
    counts those events.
    """

    uploads_received: int = 0
    forgeries_caught: int = 0
    transactions_screened: int = 0
    validations: int = 0
    unchecked: int = 0
    mistakes: int = 0
    realized_loss: float = 0.0
    expected_loss: float = 0.0
    argues_served: int = 0


@dataclass
class Governor:
    """One governor node.

    Attributes:
        governor_id: Node id.
        key: Signing credential.
        params: Protocol parameters in force.
        im: Identity Manager handle for ``verify``.
        oracle: The governor's ``validate`` — wrapped in a
            :class:`CountingOracle` so validation cost is measured.
        rng: The governor's private randomness for screening draws.
        obs: Metrics registry shared with the engine (the ``gov_*``
            family, labeled by governor id; see OBSERVABILITY.md).
    """

    governor_id: str
    key: SigningKey
    params: ProtocolParams
    im: IdentityManager
    oracle: CountingOracle
    rng: np.random.Generator
    obs: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    book: ReputationBook = field(init=False)
    ledger: Ledger = field(init=False)
    argues: ArgueManager = field(init=False)
    metrics: GovernorMetrics = field(default_factory=GovernorMetrics)
    # tx_id -> (tx, {collector: label}) for the current round
    _received: dict[str, tuple[SignedTransaction, dict[str, Label]]] = field(
        default_factory=dict, repr=False
    )
    # tx_id -> decision, for unchecked transactions awaiting truth
    _pending_unchecked: dict[str, ScreeningDecision] = field(
        default_factory=dict, repr=False
    )
    _linked: dict[str, tuple[str, ...]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.key.owner != self.governor_id:
            raise ValueError(
                f"key owner {self.key.owner!r} != governor {self.governor_id!r}"
            )
        self.book = ReputationBook(
            governor=self.governor_id,
            initial=self.params.initial_reputation,
            obs=self.obs,
        )
        self.ledger = Ledger(owner=self.governor_id)
        self.argues = ArgueManager(window=self.params.argue_window)
        gid = self.governor_id
        screenings = self.obs.counter(
            "gov_screenings_total",
            "Transactions screened, by governor and outcome",
            labels=("governor", "outcome"),
        )
        self._m_checked = screenings.labels(governor=gid, outcome="checked")
        self._m_skipped = screenings.labels(governor=gid, outcome="unchecked")
        self._m_unchecked_ratio = self.obs.gauge(
            "gov_unchecked_ratio",
            "Running unchecked fraction per governor (Lemma 2 bounds E[.] by f)",
            labels=("governor",),
        ).labels(governor=gid)
        self._m_forgeries = self.obs.counter(
            "gov_forgeries_total", "Forged uploads caught", labels=("governor",)
        ).labels(governor=gid)
        self._m_argues = self.obs.counter(
            "gov_argues_served_total",
            "Admitted argue calls re-validated",
            labels=("governor",),
        ).labels(governor=gid)
        self._m_mistakes = self.obs.counter(
            "gov_mistakes_total",
            "Unchecked records whose revealed truth contradicted the label",
            labels=("governor",),
        ).labels(governor=gid)

    # -- setup ----------------------------------------------------------

    def register_topology(
        self, topology: Topology, visible_collectors: frozenset[str] | None = None
    ) -> None:
        """Create reputation vectors for the collectors this governor sees.

        Args:
            topology: The link structure.
            visible_collectors: Partial-visibility restriction (paper
                §3.1: "a governor may only perceive partial
                information"); None means the default full view.  The
                per-provider linked set — the universe over which the
                silent mass ``W_0`` is computed — is intersected with
                the visible set, since a governor cannot fault a
                collector he never hears from.
        """
        visible = (
            set(topology.collectors) if visible_collectors is None
            else set(visible_collectors)
        )
        for collector in topology.collectors:
            if collector in visible:
                self.book.register_collector(
                    collector, topology.providers_of(collector)
                )
        self._linked = {
            provider: tuple(
                c for c in topology.collectors_of(provider) if c in visible
            )
            for provider in topology.providers
        }
        self._visible = frozenset(visible)

    def register_topology_sparse(self, topology: Topology) -> None:
        """Like :meth:`register_topology`, but with sparse default rows.

        Same collectors, same member sets, same ``_linked`` map — only
        the vector representation differs (default-row + overrides), so
        every seeded run is bit-identical to the dense registration while
        untouched members cost no memory.  Partial visibility is not
        offered here; the sparse path serves the streaming/scale-mode
        engines, which use the full view.
        """
        for collector in topology.collectors:
            self.book.register_collector_sparse(
                collector, topology.providers_of(collector)
            )
        self._linked = {
            provider: tuple(topology.collectors_of(provider))
            for provider in topology.providers
        }
        self._visible = frozenset(topology.collectors)

    def register_streaming(self, collector_members: dict[str, object]) -> None:
        """Streaming-population setup: sparse books, no materialized links.

        ``collector_members`` maps collector id → a lazy membership view
        (:class:`repro.streaming.universe.CollectorMembers`).  The
        ``_linked`` map starts empty and is populated per provider by
        :meth:`link_provider` as arrivals instantiate identities, so
        governor memory is bounded by the *active* provider set.
        """
        for collector, members in collector_members.items():
            self.book.register_collector_sparse(collector, members)
        self._linked = {}
        self._visible = frozenset(collector_members)

    def link_provider(self, provider: str, collectors: tuple[str, ...]) -> None:
        """Record a (lazily instantiated) provider's linked collector set."""
        self._linked[provider] = tuple(c for c in collectors if c in self._visible)

    def unlink_provider(self, provider: str) -> None:
        """Forget a retired provider's linked set (frees active-set memory).

        Reputation overrides for the provider stay in the sparse book —
        membership is universe-based, so a late truth reveal after the
        provider re-arrives (or even while retired) still finds its
        weights; only the O(active) link map shrinks.
        """
        self._linked.pop(provider, None)

    def can_see(self, collector: str) -> bool:
        """Whether this governor receives the collector's uploads."""
        return collector in getattr(self, "_visible", frozenset())

    # -- collector churn (crash retirement / re-admission) ----------------

    def drop_collector(self, collector: str) -> None:
        """Retire a collector: remove its vector and scrub buffered labels.

        Used when a crashed collector is churned out.  Buffered labels
        from it are scrubbed so screening never looks up a weight the
        book no longer holds; a transaction left with no reports is
        dropped entirely (its armed Δ timer no-ops).  The collector is
        also removed from every provider's linked set, so it stops
        contributing silent mass ``W_0``.
        """
        self.book.retire_collector(collector)
        self._visible = frozenset(getattr(self, "_visible", frozenset()) - {collector})
        self._linked = {
            provider: tuple(c for c in linked if c != collector)
            for provider, linked in self._linked.items()
        }
        for tx_id in list(self._received):
            _tx, labels = self._received[tx_id]
            if collector in labels:
                del labels[collector]
                if not labels:
                    del self._received[tx_id]
        # Screening-time snapshots awaiting truth revelation must be
        # scrubbed too: a reveal after the churn would otherwise look up
        # the retired collector's weight in a book that no longer holds
        # it.  (A decision left with no labels has nobody to update.)
        for tx_id in list(self._pending_unchecked):
            decision = self._pending_unchecked[tx_id]
            if collector in decision.labels:
                del decision.labels[collector]
                if not decision.labels:
                    del self._pending_unchecked[tx_id]

    def admit_collector(
        self, collector: str, providers: Iterable[str], bootstrap: str = "median"
    ) -> None:
        """Re-admit a churned collector under the membership churn rules.

        The reputation bootstrap (median / initial / min) matches
        :meth:`repro.core.reputation.ReputationBook.readmit_collector`;
        the collector rejoins the linked sets of exactly ``providers``.
        """
        providers = tuple(providers)
        self.book.readmit_collector(collector, providers, bootstrap=bootstrap)
        self._visible = frozenset(getattr(self, "_visible", frozenset()) | {collector})
        self._linked = {
            provider: (
                linked + (collector,)
                if provider in providers and collector not in linked
                else linked
            )
            for provider, linked in self._linked.items()
        }

    def crash_reset(self) -> None:
        """Model a crash-stop: volatile screening state is lost.

        The ledger (durable storage) survives; the in-memory report
        buffer does not.  Pending-unchecked decisions survive too — they
        are reconstructable from the ledger's unchecked records.
        """
        self._received.clear()

    # -- upload ingestion (Algorithm 2, deliver arm) ----------------------

    def ingest_upload(self, upload: LabeledTransaction) -> bool:
        """Verify and buffer one collector upload.

        Performs the paper's ``verify(c_i, Tx)``: the collector's
        signature over (tx, label), the embedded provider signature, and
        the collector-provider link.  A failed embedded-provider check is
        a *forgery* — case-1 reputation update; a failed collector
        signature is simply dropped (cannot be attributed).

        Returns:
            True if buffered for screening.
        """
        self.metrics.uploads_received += 1
        if not self.book.is_registered(upload.collector):
            # Churned out (e.g. retired after a crash): late in-flight
            # uploads from it carry no reputation standing and are
            # dropped before any attribution is attempted.
            return False
        tx, label = upload.parse()
        # The memoized signed-message encodings feed the IM's verification
        # cache: every governor checks the same bytes, only the first pays.
        collector_ok = self.im.verify(
            upload.collector, upload.signed_message_bytes(), upload.collector_signature
        )
        if not collector_ok:
            return False
        provider_ok = self.im.verify(
            tx.provider, tx.signed_message_bytes(), tx.provider_signature
        ) and self.im.is_linked(upload.collector, tx.provider)
        if not provider_ok:
            apply_forge_update(self.book, upload.collector)
            self.metrics.forgeries_caught += 1
            self._m_forgeries.inc()
            return False
        _tx, labels = self._received.setdefault(tx.tx_id, (tx, {}))
        if upload.collector in labels:
            # Duplicate upload from the same collector: keep the first
            # (atomic broadcast makes later copies replays).
            return False
        labels[upload.collector] = label
        return True

    # -- screening (Algorithm 2, endtime arm) ----------------------------

    def screen_single(self, tx_id: str) -> TxRecord | None:
        """Screen one buffered transaction (Algorithm 2's ``endtime(tx)``).

        Used by the networked engine, whose per-transaction Δ timers fire
        independently.  Applies case-2 reputation updates for checked
        transactions and registers unchecked ones with the argue manager.

        Raises:
            ProtocolViolationError: ``tx_id`` is not buffered.
        """
        entry = self._received.pop(tx_id, None)
        if entry is None:
            raise ProtocolViolationError(f"no buffered reports for tx {tx_id}")
        tx, labels = entry
        reports = ReportSet(
            tx=tx,
            provider=tx.provider,
            labels=labels,
            linked_collectors=self._linked.get(tx.provider, tuple(sorted(labels))),
        )
        decision = screen_transaction(
            self.params, self.book, reports, self.oracle.validate, self.rng
        )
        self.metrics.transactions_screened += 1
        if decision.checked:
            self.metrics.validations += 1
            self._m_checked.inc()
            true_label = Label.from_bool(bool(decision.validation_result))
            apply_checked_update(self.book, decision.labels, true_label)
        else:
            self.metrics.unchecked += 1
            self._m_skipped.inc()
            self._pending_unchecked[tx_id] = decision
            self.argues.record_unchecked(tx_id)
        self._m_unchecked_ratio.set(
            self.metrics.unchecked / self.metrics.transactions_screened
        )
        return decision_to_record(decision)

    def screen_pending(self) -> list[TxRecord]:
        """Screen every buffered transaction; returns this round's records.

        The batch form used by the in-process engine, where all Δ timers
        of a round fire together at the phase boundary.
        """
        records: list[TxRecord] = []
        for tx_id in sorted(self._received):
            record = self.screen_single(tx_id)
            if record is not None:
                records.append(record)
        return records

    @property
    def buffered_tx_ids(self) -> list[str]:
        """Transactions awaiting their screening timer."""
        return sorted(self._received)

    def has_buffered(self, tx_id: str) -> bool:
        """O(1) membership test against the report buffer.

        Equivalent to ``tx_id in buffered_tx_ids`` without the per-call
        sort; the networked engine probes this once per delivered upload.
        """
        return tx_id in self._received

    # -- truth revelation / argue (Algorithm 2, deliver_argue arm) --------

    def handle_argue(self, tx_id: str) -> TxRecord | None:
        """Serve an ``argue(tx, s)`` call for an unchecked transaction.

        Validates the transaction, applies the case-3 reputation update,
        and returns the re-evaluated record to include in a later block
        if the argue is admitted (within the burial window U).
        """
        outcome = self.argues.argue(tx_id)
        if not outcome.accepted:
            return None
        decision = self._pending_unchecked.pop(tx_id, None)
        if decision is None:
            raise ProtocolViolationError(
                f"argue admitted for {tx_id} but no pending decision is held"
            )
        self.metrics.argues_served += 1
        self._m_argues.inc()
        self.metrics.validations += 1
        is_valid = self.oracle.validate(decision.tx)
        true_label = Label.from_bool(is_valid)
        self._account_unchecked_truth(decision, true_label)
        apply_reveal_update(
            self.params,
            self.book,
            decision.provider,
            self._linked.get(decision.provider, tuple(sorted(decision.labels))),
            decision.labels,
            true_label,
        )
        if is_valid:
            return TxRecord(
                tx=decision.tx, label=Label.VALID, status=CheckStatus.REEVALUATED
            )
        return None

    def reveal_truth(self, tx_id: str, oracle: ValidityOracle) -> None:
        """Out-of-band truth revelation (experiment harness hook).

        Theorem 1 assumes "the real states of T transactions ... are
        revealed sometime after they appeared in the ledger"; benches
        reveal through this method when no provider argues.
        """
        decision = self._pending_unchecked.pop(tx_id, None)
        if decision is None:
            return
        self.argues.resolve_silently(tx_id)
        true_label = Label.from_bool(oracle.validate(decision.tx))
        self._account_unchecked_truth(decision, true_label)
        apply_reveal_update(
            self.params,
            self.book,
            decision.provider,
            self._linked.get(decision.provider, tuple(sorted(decision.labels))),
            decision.labels,
            true_label,
        )

    def _account_unchecked_truth(
        self, decision: ScreeningDecision, true_label: Label
    ) -> None:
        """Update mistake/loss counters when an unchecked truth arrives.

        The theorem's per-transaction expected loss is
        ``L_t = 2 W_wrong / (W_right + W_wrong)`` with right/wrong
        resolved against the revealed truth and the weights taken at
        screening time (the decision snapshot).
        """
        wrong_mass = decision.w_minus if true_label is Label.VALID else decision.w_plus
        denom = decision.reported_mass
        self.metrics.expected_loss += 2.0 * wrong_mass / denom if denom else 0.0
        if true_label is Label.VALID:
            # Recorded invalid-unchecked but actually valid: a mistake.
            self.metrics.mistakes += 1
            self._m_mistakes.inc()
            self.metrics.realized_loss += 2.0
