"""Collector agents — label, sign, upload (or misbehave).

A collector verifies each incoming transaction's provider signature,
validates it, labels it ±1, signs (tx, label) and uploads to all
governors (Algorithm 1).  Misbehaviour is delegated to a
:class:`~repro.agents.behaviors.CollectorBehavior`: the behaviour may
flip the label, stay silent, or direct the collector to *forge* — upload
a transaction whose provider signature it fabricated, which governors
detect via ``verify`` (except with negligible probability, modelled
as certainty here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.behaviors import CollectorBehavior
from repro.crypto.signatures import SigningKey, sign
from repro.ledger.transaction import (
    LabeledTransaction,
    Label,
    SignedTransaction,
    TransactionBody,
    make_labeled_transaction,
)
from repro.ledger.validation import ValidityOracle

__all__ = ["Collector"]


@dataclass
class Collector:
    """One collector node.

    Attributes:
        collector_id: Node id.
        key: Signing credential from the IM.
        linked_providers: The ``s`` providers this collector oversees.
        behavior: The conduct model (honest by default at call sites).
        rng: Behaviour randomness (explicit, reproducible).
    """

    collector_id: str
    key: SigningKey
    linked_providers: tuple[str, ...]
    behavior: CollectorBehavior
    rng: np.random.Generator
    uploads: int = field(default=0, repr=False)
    conceals: int = field(default=0, repr=False)
    forgeries: int = field(default=0, repr=False)
    _forge_nonce: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.key.owner != self.collector_id:
            raise ValueError(
                f"key owner {self.key.owner!r} != collector {self.collector_id!r}"
            )

    def process(
        self, tx: SignedTransaction, oracle: ValidityOracle
    ) -> LabeledTransaction | None:
        """Algorithm 1's body for one delivered transaction.

        The collector learns the true status via ``validate`` (collectors
        can always check — the paper's efficiency concern is only the
        governors), then lets the behaviour decide what to upload.

        Single-upload view of :meth:`process_all`; a behaviour that
        equivocates loses its second upload on this path.

        Returns:
            The signed labeled transaction, or None if concealed.
        """
        uploads = self.process_all(tx, oracle)
        return uploads[0] if uploads else None

    def process_all(
        self, tx: SignedTransaction, oracle: ValidityOracle
    ) -> list[LabeledTransaction]:
        """Byzantine-aware labelling: zero, one, or two signed uploads.

        Extends :meth:`process` with two *optional* behaviour hooks
        (looked up with ``getattr``, so every pre-existing behaviour
        works unchanged):

        * ``label_for_tx(tx, true_valid, rng)`` — provider-aware
          labelling, used by colluding cartels that target one
          provider's transactions while staying honest elsewhere;
        * ``conflicting_label_for(tx, primary_label, rng)`` — a second,
          *differently labelled* signed upload for the same transaction.
          Both uploads carry valid collector signatures, which is
          exactly the two-signed-messages equivocation proof the safety
          auditor quarantines on.
        """
        true_valid = oracle.validate(tx)
        label_for_tx = getattr(self.behavior, "label_for_tx", None)
        if label_for_tx is not None:
            label = label_for_tx(tx, true_valid, self.rng)
        else:
            label = self.behavior.label_for(true_valid, self.rng)
        if label is None:
            self.conceals += 1
            return []
        self.uploads += 1
        uploads = [make_labeled_transaction(self.key, tx, label)]
        conflicting = getattr(self.behavior, "conflicting_label_for", None)
        if conflicting is not None:
            second = conflicting(tx, label, self.rng)
            if second is not None and second != label:
                self.uploads += 1
                uploads.append(make_labeled_transaction(self.key, tx, second))
        return uploads

    def maybe_forge(self, timestamp: float) -> LabeledTransaction | None:
        """Attempt a forgery if the behaviour calls for one.

        The forged transaction names a linked provider but carries a
        signature produced with the *collector's* key — exactly what a
        collector without the provider's secret can do, and exactly what
        ``verify`` rejects.

        Returns:
            The bogus upload, or None.
        """
        if not self.behavior.should_forge(self.rng):
            return None
        self.forgeries += 1
        victim = self.linked_providers[self._forge_nonce % len(self.linked_providers)]
        body = TransactionBody(
            provider=victim,
            payload={"forged-by": self.collector_id, "n": self._forge_nonce},
            nonce=self._forge_nonce,
        )
        self._forge_nonce += 1
        # Fabricated provider signature: signed with the collector's key
        # but claiming the victim as signer -> never verifies.
        bogus_message = ("tx", body.canonical_bytes(), timestamp)
        bogus_sig_raw = sign(self.key, bogus_message)
        forged_provider_sig = type(bogus_sig_raw)(signer=victim, tag=bogus_sig_raw.tag)
        forged_tx = SignedTransaction(
            body=body, timestamp=timestamp, provider_signature=forged_provider_sig
        )
        return make_labeled_transaction(self.key, forged_tx, Label.VALID)
