"""Provider agents — the transaction sources.

A provider signs each transaction together with a timestamp
(Section 3.2), broadcasts it to his ``r`` linked collectors, and — if
*active* — retrieves every block and argues whenever one of his valid
transactions is recorded as invalid (the Validity property quantifies
over exactly these active honest providers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signatures import SigningKey
from repro.ledger.block import Block
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    SignedTransaction,
    make_signed_transaction,
)
from repro.ledger.validation import ValidityOracle

__all__ = ["Provider"]


@dataclass
class Provider:
    """One provider node.

    Attributes:
        provider_id: Node id (matches the Identity Manager enrolment).
        key: Signing credential issued by the IM.
        linked_collectors: The ``r`` collectors this provider feeds.
        active: Whether the provider retrieves blocks and argues; the
            Validity property only protects active providers.
        argue_abuse_rate: Adversarial-provider model — probability of
            *also* arguing about own transactions that were correctly
            recorded invalid.  Each such argue forces governors to
            re-validate (a bounded griefing cost: one validation per
            argue, and the burial window U caps how long a transaction
            stays arguable) but can never flip the record, since the
            governors' own ``validate`` settles it.
        abuse_rng: Randomness for the abuse decision (required when
            ``argue_abuse_rate > 0``).
    """

    provider_id: str
    key: SigningKey
    linked_collectors: tuple[str, ...]
    active: bool = True
    argue_abuse_rate: float = 0.0
    abuse_rng: object | None = None
    _nonce: int = field(default=0, repr=False)
    sent_tx_ids: set[str] = field(default_factory=set, repr=False)
    argued_tx_ids: set[str] = field(default_factory=set, repr=False)
    spurious_argues: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.key.owner != self.provider_id:
            raise ValueError(
                f"key owner {self.key.owner!r} does not match provider {self.provider_id!r}"
            )
        if not 0.0 <= self.argue_abuse_rate <= 1.0:
            raise ValueError(
                f"argue_abuse_rate must be in [0, 1], got {self.argue_abuse_rate}"
            )
        if self.argue_abuse_rate > 0.0 and self.abuse_rng is None:
            raise ValueError("argue_abuse_rate > 0 requires an abuse_rng")

    def create_transaction(self, payload: object, timestamp: float) -> SignedTransaction:
        """Generate and sign the next transaction (fresh nonce)."""
        tx = make_signed_transaction(self.key, payload, timestamp, nonce=self._nonce)
        self._nonce += 1
        self.sent_tx_ids.add(tx.tx_id)
        return tx

    def review_block(self, block: Block, oracle: ValidityOracle) -> list[str]:
        """The active provider's block scan: which own txs to argue about.

        A provider argues when a transaction he knows to be valid is
        recorded as invalid *and unchecked* (a checked-invalid record
        means the governor already validated, and with a truthful oracle
        that cannot contradict the provider).  Each transaction is argued
        at most once.

        Args:
            block: A freshly retrieved block.
            oracle: The provider's own knowledge of validity — providers
                know their transactions, modelled via the shared oracle.

        Returns:
            tx ids to invoke ``argue(tx, s)`` for, in block order.
        """
        if not self.active:
            return []
        to_argue: list[str] = []
        for rec in block.tx_list:
            tx_id = rec.tx.tx_id
            if tx_id not in self.sent_tx_ids or tx_id in self.argued_tx_ids:
                continue
            if rec.label is not Label.INVALID or rec.status is not CheckStatus.UNCHECKED:
                continue
            if oracle.validate(rec.tx):
                self.argued_tx_ids.add(tx_id)
                to_argue.append(tx_id)
            elif (
                self.argue_abuse_rate > 0.0
                and self.abuse_rng.random() < self.argue_abuse_rate
            ):
                # Spurious argue: the record is correct, but the abusive
                # provider contests it anyway to burn governor validations.
                self.argued_tx_ids.add(tx_id)
                self.spurious_argues += 1
                to_argue.append(tx_id)
        return to_argue
