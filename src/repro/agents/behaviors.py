"""Collector behaviour models — the adversary space of Section 4.2.

The paper names three classes of collector misbehaviour:

1. **misreport** — upload the opposite label;
2. **conceal** — fail to report a received transaction;
3. **forge** — fabricate a transaction.

A behaviour decides, per received transaction, whether to report the
truth, lie, or stay silent, and how often to attempt forgeries.  All
randomness flows through the caller-supplied RNG, keeping runs
reproducible.  Stateful behaviours (flip-flop, sleeper) count their own
decisions.

Theorem 1 quantifies over arbitrary behaviour as long as *one* collector
behaves well, so the experiments mix these models freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label

__all__ = [
    "CollectorBehavior",
    "HonestBehavior",
    "MisreportBehavior",
    "ConcealBehavior",
    "ForgeBehavior",
    "MixedAdversary",
    "FlipFlopBehavior",
    "SleeperBehavior",
    "AlwaysInvertBehavior",
    "behavior_registry",
]


class CollectorBehavior(Protocol):
    """Strategy interface for a collector's per-transaction conduct."""

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        """The label to upload for a transaction, or None to conceal."""
        ...

    def should_forge(self, rng: np.random.Generator) -> bool:
        """Whether to also submit a forged transaction this opportunity."""
        ...


def _check_probability(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {p}")


@dataclass
class HonestBehavior:
    """Always report the true label, never forge — the well-behaved collector."""

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


@dataclass
class MisreportBehavior:
    """Flip the label independently with probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        _check_probability("misreport probability p", self.p)

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        if rng.random() < self.p:
            return Label.from_bool(not true_valid)
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


@dataclass
class ConcealBehavior:
    """Stay silent with probability ``q``; report truthfully otherwise."""

    q: float

    def __post_init__(self) -> None:
        _check_probability("conceal probability q", self.q)

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        if rng.random() < self.q:
            return None
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


@dataclass
class ForgeBehavior:
    """Report honestly but attempt a forgery with probability ``w``."""

    w: float

    def __post_init__(self) -> None:
        _check_probability("forge probability w", self.w)

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.w)


@dataclass
class MixedAdversary:
    """Independent misreport/conceal/forge rates — the general adversary.

    Conceal is evaluated first (a concealed transaction cannot also be
    mislabeled), then misreport.
    """

    p_misreport: float = 0.0
    p_conceal: float = 0.0
    p_forge: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("p_misreport", self.p_misreport)
        _check_probability("p_conceal", self.p_conceal)
        _check_probability("p_forge", self.p_forge)

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        if rng.random() < self.p_conceal:
            return None
        if rng.random() < self.p_misreport:
            return Label.from_bool(not true_valid)
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p_forge)


@dataclass
class FlipFlopBehavior:
    """Alternate honest/lying phases of ``period`` transactions each.

    A worst-case pattern for naive (windowed-average) reputation schemes;
    the multiplicative scheme keeps punishing each lying phase.
    """

    period: int = 10
    _seen: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(f"flip-flop period must be >= 1, got {self.period}")

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        phase = (self._seen // self.period) % 2
        self._seen += 1
        if phase == 0:
            return Label.from_bool(true_valid)
        return Label.from_bool(not true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


@dataclass
class SleeperBehavior:
    """Behave perfectly for ``honest_prefix`` transactions, then defect.

    Models reputation farming: build weight, then spend it lying with
    probability ``p_after``.  Theorem 1 still bounds the damage because
    every wrong sampled label multiplies the sleeper's weight down.
    """

    honest_prefix: int = 100
    p_after: float = 1.0
    _seen: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.honest_prefix < 0:
            raise ConfigurationError("honest_prefix cannot be negative")
        _check_probability("p_after", self.p_after)

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        self._seen += 1
        if self._seen <= self.honest_prefix:
            return Label.from_bool(true_valid)
        if rng.random() < self.p_after:
            return Label.from_bool(not true_valid)
        return Label.from_bool(true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


@dataclass
class AlwaysInvertBehavior:
    """Deterministically report the opposite label — maximal misreporting."""

    def label_for(self, true_valid: bool, rng: np.random.Generator) -> Label | None:
        return Label.from_bool(not true_valid)

    def should_forge(self, rng: np.random.Generator) -> bool:
        return False


def behavior_registry() -> dict[str, type]:
    """Name -> behaviour class, for config-driven experiment sweeps."""
    return {
        "honest": HonestBehavior,
        "misreport": MisreportBehavior,
        "conceal": ConcealBehavior,
        "forge": ForgeBehavior,
        "mixed": MixedAdversary,
        "flipflop": FlipFlopBehavior,
        "sleeper": SleeperBehavior,
        "invert": AlwaysInvertBehavior,
    }
