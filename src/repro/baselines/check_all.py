"""Check-all baseline: the f -> 0 extreme.

The governor validates every transaction himself.  Zero mistakes, but a
validation per transaction — exactly the cost the paper's mechanism is
designed to avoid.  E8's accuracy ceiling and cost ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines.base import PolicyDecision
from repro.ledger.transaction import Label

__all__ = ["CheckAllPolicy"]


@dataclass
class CheckAllPolicy:
    """Validate everything; labels are irrelevant."""

    def screen(
        self, labels: Mapping[str, Label], rng: np.random.Generator
    ) -> PolicyDecision:
        return PolicyDecision(recorded_label=Label.VALID, checked=True)

    def on_truth(
        self, labels: Mapping[str, Label], truth: Label, was_checked: bool
    ) -> None:
        # Nothing to learn: every transaction is checked.
        return
