"""Static-trust baseline: fixed weights, no updates.

The operator assigns trust weights once (e.g. from an off-chain audit)
and the governor uses the paper's selection/skipping rule over those
*frozen* weights.  If the audit was right, this matches the mechanism's
steady state; when a trusted collector turns coat (the sleeper
behaviour), static trust keeps sampling the traitor while the learned
mechanism demotes him — the scenario E8's sleeper column isolates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines.base import PolicyDecision
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label

__all__ = ["StaticTrustPolicy"]


@dataclass
class StaticTrustPolicy:
    """The paper's selection/skip rule over operator-frozen weights."""

    params: ProtocolParams
    trust: dict[str, float]

    def __post_init__(self) -> None:
        if not self.trust:
            raise ConfigurationError("static trust table cannot be empty")
        if any(w <= 0 for w in self.trust.values()):
            raise ConfigurationError("static trust weights must be positive")

    def screen(
        self, labels: Mapping[str, Label], rng: np.random.Generator
    ) -> PolicyDecision:
        reporters = sorted(c for c in labels if c in self.trust)
        if not reporters:
            # Only unknown reporters: fall back to checking.
            return PolicyDecision(recorded_label=Label.VALID, checked=True)
        w = np.array([self.trust[c] for c in reporters])
        probs = w / w.sum()
        drawn_idx = int(rng.choice(len(reporters), p=probs))
        label = labels[reporters[drawn_idx]]
        if label is Label.VALID:
            return PolicyDecision(recorded_label=Label.VALID, checked=True)
        skip = self.params.f * float(probs[drawn_idx])
        checked = bool(rng.random() >= skip)
        return PolicyDecision(recorded_label=Label.INVALID, checked=checked)

    def on_truth(
        self, labels: Mapping[str, Label], truth: Label, was_checked: bool
    ) -> None:
        # Frozen by definition.
        return
