"""Majority-vote baseline: unweighted voting over the uploaded labels.

The governor records the label the majority of reporters agree on and
validates only ties.  Strong against *independent* low-rate noise, but
an adversarial majority (collusion) flips every record and the policy
never adapts — contrast with the reputation draw, which de-weights a
lying majority after enough reveals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines.base import PolicyDecision
from repro.ledger.transaction import Label

__all__ = ["MajorityVotePolicy"]


@dataclass
class MajorityVotePolicy:
    """Record the unweighted majority label; check ties only."""

    def screen(
        self, labels: Mapping[str, Label], rng: np.random.Generator
    ) -> PolicyDecision:
        ups = sum(1 for lab in labels.values() if lab is Label.VALID)
        downs = len(labels) - ups
        if ups == downs:
            return PolicyDecision(recorded_label=Label.VALID, checked=True)
        majority = Label.VALID if ups > downs else Label.INVALID
        return PolicyDecision(recorded_label=majority, checked=False)

    def on_truth(
        self, labels: Mapping[str, Label], truth: Label, was_checked: bool
    ) -> None:
        # Votes are unweighted; nothing adapts.
        return
