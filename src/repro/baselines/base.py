"""Screening-policy interface and the comparison harness (experiment E8).

The paper's mechanism is, at its core, a *screening policy*: given the
labels collectors uploaded for a transaction, decide whether to spend a
validation and what to record.  Expressing the baselines and the paper's
mechanism behind one interface lets E8 compare them on identical
transaction streams:

* :class:`ReputationPolicy` — the paper (reputation-proportional source
  selection, f-tuned skipping, multiplicative updates);
* check-all / check-none / uniform-no-reputation / majority-vote /
  static-trust — in the sibling modules.

:class:`PolicySimulation` replays a seeded stream of (truth, labels)
pairs through a policy and accounts mistakes, validations and loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.agents.behaviors import CollectorBehavior
from repro.core.params import ProtocolParams, gamma_for
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label

__all__ = [
    "PolicyDecision",
    "ScreeningPolicy",
    "ReputationPolicy",
    "PolicyStats",
    "PolicySimulation",
]


@dataclass(frozen=True)
class PolicyDecision:
    """What a policy did for one transaction."""

    recorded_label: Label
    checked: bool


class ScreeningPolicy(Protocol):
    """A governor-side screening strategy."""

    def screen(
        self, labels: Mapping[str, Label], rng: np.random.Generator
    ) -> PolicyDecision:
        """Decide on one transaction given the uploaded labels.

        A policy that checks learns the truth via the harness (the
        harness validates when ``checked`` is True); policies must not
        peek at the truth themselves.
        """
        ...

    def on_truth(
        self, labels: Mapping[str, Label], truth: Label, was_checked: bool
    ) -> None:
        """Learn from a revealed truth (checked now, unchecked later)."""
        ...


@dataclass
class ReputationPolicy:
    """The paper's mechanism as a policy (one provider's collector group)."""

    params: ProtocolParams
    collector_ids: Sequence[str]
    weights: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        self.weights = {c: self.params.initial_reputation for c in self.collector_ids}

    def screen(
        self, labels: Mapping[str, Label], rng: np.random.Generator
    ) -> PolicyDecision:
        reporters = sorted(c for c in labels if c in self.weights)
        if not reporters:
            # No known reporter: the conservative fallback is to check.
            return PolicyDecision(recorded_label=Label.VALID, checked=True)
        w = np.array([self.weights[c] for c in reporters])
        probs = w / w.sum()
        drawn_idx = int(rng.choice(len(reporters), p=probs))
        drawn = reporters[drawn_idx]
        label = labels[drawn]
        if label is Label.VALID:
            return PolicyDecision(recorded_label=Label.VALID, checked=True)
        skip = self.params.f * float(probs[drawn_idx])
        checked = bool(rng.random() >= skip)
        return PolicyDecision(recorded_label=Label.INVALID, checked=checked)

    def add_collector(self, collector_id: str, bootstrap: str = "median") -> None:
        """Membership churn: admit a new collector mid-stream.

        The paper assumes a static collector set; real alliances churn.
        The bootstrap weight decides the newcomer's standing:

        * ``"median"`` — the population median (a newcomer neither
          dominates selection nor starves: it inherits the credibility
          of the *typical* incumbent);
        * ``"initial"`` — the protocol's fresh weight (optimistic: new
          collectors start fully trusted, like at genesis);
        * ``"min"`` — the worst incumbent's weight (pessimistic: trust
          must be earned through checked transactions first).

        Raises:
            ConfigurationError: duplicate id or unknown bootstrap rule.
        """
        import numpy as _np

        if collector_id in self.weights:
            raise ConfigurationError(f"collector {collector_id!r} already present")
        incumbents = list(self.weights.values())
        if bootstrap == "median":
            weight = float(_np.median(incumbents)) if incumbents else (
                self.params.initial_reputation
            )
        elif bootstrap == "initial":
            weight = self.params.initial_reputation
        elif bootstrap == "min":
            weight = min(incumbents) if incumbents else self.params.initial_reputation
        else:
            raise ConfigurationError(f"unknown bootstrap rule {bootstrap!r}")
        self.weights[collector_id] = max(weight, 1e-300)
        self.collector_ids = tuple(self.weights)

    def retire_collector(self, collector_id: str) -> None:
        """Membership churn: remove a collector (e.g. left the alliance).

        Raises:
            ConfigurationError: unknown collector.
        """
        if collector_id not in self.weights:
            raise ConfigurationError(f"collector {collector_id!r} not present")
        del self.weights[collector_id]
        self.collector_ids = tuple(self.weights)

    def on_truth(
        self, labels: Mapping[str, Label], truth: Label, was_checked: bool
    ) -> None:
        if was_checked:
            # Case 2 uses the additive misreport entry, which does not
            # feed back into source selection; selection weights are the
            # first-s entries, updated only on unchecked reveals.
            return
        known = {c: lab for c, lab in labels.items() if c in self.weights}
        w_right = sum(self.weights[c] for c, lab in known.items() if lab is truth)
        w_wrong = sum(self.weights[c] for c, lab in known.items() if lab is not truth)
        total = w_right + w_wrong
        loss = 0.0 if total == 0 else 2.0 * w_wrong / total
        gamma = gamma_for(self.params.beta, loss)
        for cid in self.collector_ids:
            lab = known.get(cid)
            if lab is None:
                self.weights[cid] = max(self.weights[cid] * self.params.beta, 1e-300)
            elif lab is not truth:
                self.weights[cid] = max(self.weights[cid] * gamma, 1e-300)


@dataclass
class PolicyStats:
    """Outcome of one policy over one stream."""

    transactions: int = 0
    validations: int = 0
    unchecked: int = 0
    mistakes: int = 0
    realized_loss: float = 0.0

    @property
    def check_rate(self) -> float:
        """Fraction of transactions the policy validated."""
        return self.validations / self.transactions if self.transactions else 0.0

    @property
    def mistake_rate(self) -> float:
        """Mistakes per transaction."""
        return self.mistakes / self.transactions if self.transactions else 0.0


@dataclass
class PolicySimulation:
    """Replay one seeded stream through a policy.

    The stream is generated from collector behaviours exactly as in
    :class:`repro.core.game.ReputationGame`; identical (behaviours,
    horizon, seed) produce identical (truth, labels) sequences, so
    different policies face the same adversary.
    """

    behaviors: Sequence[CollectorBehavior]
    horizon: int
    p_valid: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if not 0.0 <= self.p_valid <= 1.0:
            raise ConfigurationError("p_valid must be in [0, 1]")

    def stream(self) -> list[tuple[Label, dict[str, Label]]]:
        """Materialise the (truth, labels) stream."""
        rng = np.random.default_rng(self.seed)
        ids = [f"c{i}" for i in range(len(self.behaviors))]
        out: list[tuple[Label, dict[str, Label]]] = []
        for _ in range(self.horizon):
            truth_valid = bool(rng.random() < self.p_valid)
            labels: dict[str, Label] = {}
            for cid, behavior in zip(ids, self.behaviors, strict=True):
                label = behavior.label_for(truth_valid, rng)
                if label is not None:
                    labels[cid] = label
            out.append((Label.from_bool(truth_valid), labels))
        return out

    def run(self, policy: ScreeningPolicy, policy_seed: int = 1) -> PolicyStats:
        """Run ``policy`` over the stream and account its performance.

        A *mistake* is recording the wrong final label: an unchecked
        record whose provisional label contradicts the truth (checked
        transactions are never mistaken — validation reveals the truth).
        """
        rng = np.random.default_rng(policy_seed)
        stats = PolicyStats()
        for truth, labels in self.stream():
            stats.transactions += 1
            if not labels:
                # Nothing uploaded: the transaction is invisible to the
                # governor; skip (no decision possible for any policy).
                continue
            decision = policy.screen(labels, rng)
            if decision.checked:
                stats.validations += 1
                policy.on_truth(labels, truth, was_checked=True)
            else:
                stats.unchecked += 1
                if decision.recorded_label is not truth:
                    stats.mistakes += 1
                    stats.realized_loss += 2.0
                policy.on_truth(labels, truth, was_checked=False)
        return stats
