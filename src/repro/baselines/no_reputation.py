"""No-reputation baseline: the paper's rule with uniform source selection.

Identical to the mechanism — valid-labeled transactions are checked,
invalid-labeled ones are skipped with probability ``f * Pr[chosen]`` —
except the source collector is drawn *uniformly* among reporters and no
weights are learned.  Isolates the value of the reputation-proportional
draw: with adversarial collectors in the pool, the uniform draw keeps
sampling them forever while the reputation draw starves them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines.base import PolicyDecision
from repro.core.params import ProtocolParams
from repro.ledger.transaction import Label

__all__ = ["UniformSelectionPolicy"]


@dataclass
class UniformSelectionPolicy:
    """f-tuned skipping with a uniform (unlearned) source draw."""

    params: ProtocolParams

    def screen(
        self, labels: Mapping[str, Label], rng: np.random.Generator
    ) -> PolicyDecision:
        reporters = sorted(labels)
        probability = 1.0 / len(reporters)
        drawn = reporters[int(rng.integers(len(reporters)))]
        label = labels[drawn]
        if label is Label.VALID:
            return PolicyDecision(recorded_label=Label.VALID, checked=True)
        skip = self.params.f * probability
        checked = bool(rng.random() >= skip)
        return PolicyDecision(recorded_label=Label.INVALID, checked=checked)

    def on_truth(
        self, labels: Mapping[str, Label], truth: Label, was_checked: bool
    ) -> None:
        # Deliberately no learning — that is the ablation.
        return
