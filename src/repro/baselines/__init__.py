"""Baseline screening policies and the comparison harness (E8)."""

from repro.baselines.base import (
    PolicyDecision,
    PolicySimulation,
    PolicyStats,
    ReputationPolicy,
    ScreeningPolicy,
)
from repro.baselines.check_all import CheckAllPolicy
from repro.baselines.check_none import CheckNonePolicy
from repro.baselines.majority_vote import MajorityVotePolicy
from repro.baselines.no_reputation import UniformSelectionPolicy
from repro.baselines.static_trust import StaticTrustPolicy

__all__ = [
    "CheckAllPolicy",
    "CheckNonePolicy",
    "MajorityVotePolicy",
    "PolicyDecision",
    "PolicySimulation",
    "PolicyStats",
    "ReputationPolicy",
    "ScreeningPolicy",
    "StaticTrustPolicy",
    "UniformSelectionPolicy",
]
