"""Check-none baseline: the f -> 1 extreme.

The governor never validates; he records the label of a uniformly drawn
reporter.  Zero validation cost, but every adversarial label lands —
the floor E8 compares mistake counts against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines.base import PolicyDecision
from repro.ledger.transaction import Label

__all__ = ["CheckNonePolicy"]


@dataclass
class CheckNonePolicy:
    """Trust a uniformly random reporter, never validate."""

    def screen(
        self, labels: Mapping[str, Label], rng: np.random.Generator
    ) -> PolicyDecision:
        reporters = sorted(labels)
        drawn = reporters[int(rng.integers(len(reporters)))]
        return PolicyDecision(recorded_label=labels[drawn], checked=False)

    def on_truth(
        self, labels: Mapping[str, Label], truth: Label, was_checked: bool
    ) -> None:
        # No learning signal is used.
        return
