"""Minimal in-tree PEP 517/660 build backend (stdlib only).

This repository targets offline, air-gapped environments where the
``wheel`` distribution may be absent and pip cannot download build
dependencies.  The stock setuptools backend of older environments fails
there ("invalid command 'bdist_wheel'"), so we ship a tiny backend that
can produce both a regular wheel (copying ``src/repro``) and a PEP 660
editable wheel (a ``.pth`` pointer at ``src``).  It has no dependencies
beyond the standard library, which makes ``pip install -e .`` work even
inside pip's isolated build environment.
"""

from __future__ import annotations

import base64
import hashlib
import os
import tarfile
import zipfile

_NAME = "repro"
_VERSION = "1.0.0"
_ROOT = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(_ROOT, "src")

_METADATA = f"""\
Metadata-Version: 2.1
Name: {_NAME}
Version: {_VERSION}
Summary: Reproduction of 'An Efficient Permissioned Blockchain with Provable Reputation Mechanism' (ICDCS 2021 poster)
Requires-Python: >=3.10
Requires-Dist: numpy>=1.24
"""

_WHEEL_META = """\
Wheel-Version: 1.0
Generator: repro-inline-backend (1.0.0)
Root-Is-Purelib: true
Tag: py3-none-any
"""


def _record_line(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=")
    return f"{name},sha256={digest.decode()},{len(data)}"


def _write_wheel(path: str, files: dict[str, bytes]) -> None:
    dist_info = f"{_NAME}-{_VERSION}.dist-info"
    files = dict(files)
    files[f"{dist_info}/METADATA"] = _METADATA.encode()
    files[f"{dist_info}/WHEEL"] = _WHEEL_META.encode()
    record_name = f"{dist_info}/RECORD"
    record_lines = [_record_line(name, data) for name, data in files.items()]
    record_lines.append(f"{record_name},,")
    files[record_name] = ("\n".join(record_lines) + "\n").encode()
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, data in files.items():
            zf.writestr(name, data)


def _package_files() -> dict[str, bytes]:
    out: dict[str, bytes] = {}
    pkg_root = os.path.join(_SRC, _NAME)
    for dirpath, _dirnames, filenames in os.walk(pkg_root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, _SRC).replace(os.sep, "/")
            with open(full, "rb") as fh:
                out[rel] = fh.read()
    return out


# -- PEP 517 hooks ---------------------------------------------------------


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    filename = f"{_NAME}-{_VERSION}-py3-none-any.whl"
    _write_wheel(os.path.join(wheel_directory, filename), _package_files())
    return filename


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    filename = f"{_NAME}-{_VERSION}-py3-none-any.whl"
    pth = f"__editable__.{_NAME}.pth"
    _write_wheel(
        os.path.join(wheel_directory, filename), {pth: (_SRC + "\n").encode()}
    )
    return filename


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    dist_info = f"{_NAME}-{_VERSION}.dist-info"
    target = os.path.join(metadata_directory, dist_info)
    os.makedirs(target, exist_ok=True)
    with open(os.path.join(target, "METADATA"), "w") as fh:
        fh.write(_METADATA)
    with open(os.path.join(target, "WHEEL"), "w") as fh:
        fh.write(_WHEEL_META)
    return dist_info


def prepare_metadata_for_build_editable(metadata_directory, config_settings=None):
    return prepare_metadata_for_build_wheel(metadata_directory, config_settings)


def build_sdist(sdist_directory, config_settings=None):
    filename = f"{_NAME}-{_VERSION}.tar.gz"
    base = f"{_NAME}-{_VERSION}"
    with tarfile.open(os.path.join(sdist_directory, filename), "w:gz") as tf:
        for member in ("pyproject.toml", "_repro_build.py", "README.md", "src"):
            full = os.path.join(_ROOT, member)
            if os.path.exists(full):
                tf.add(full, arcname=f"{base}/{member}")
    return filename
