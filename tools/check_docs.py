#!/usr/bin/env python3
"""Link and anchor checker for the repository's markdown docs.

Stdlib-only, no network: validates that every relative link in every
tracked ``*.md`` file points at an existing file, and that every
``#fragment`` (same-file or cross-file) matches a real heading under
GitHub's slugification rules.  External ``http(s)://`` / ``mailto:``
targets are skipped.

Usage::

    python tools/check_docs.py [root]

Exit status 0 when clean, 1 with one line per broken link otherwise.
Run by CI (.github/workflows/ci.yml) and wrapped as a unit test in
tests/test_docs_links.py so local pytest catches doc rot too.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Directories never scanned for markdown (generated or vendored).
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules", ".benchmarks"}

_LINK = re.compile(r"(?<!\!)\[[^\]^\[]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_FENCE = re.compile(r"^(```|~~~)")


def _strip_fences(text: str) -> list[str]:
    """The file's lines with fenced code blocks blanked out."""
    lines = []
    in_fence = False
    for line in text.split("\n"):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return lines


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line's text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # drop code spans, keep text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set[str]:
    """All anchor slugs a markdown file exposes (with -N dedup suffixes)."""
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    for line in _strip_fences(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        base = github_slug(match.group(2))
        count = seen.get(base, 0)
        seen[base] = count + 1
        slugs.add(base if count == 0 else f"{base}-{count}")
    return slugs


def markdown_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def check_file(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(_strip_fences(path.read_text(encoding="utf-8")), 1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            dest = path if not base else (path.parent / base).resolve()
            where = f"{path.relative_to(root)}:{lineno}"
            if base and not dest.exists():
                errors.append(f"{where}: broken link target {target!r}")
                continue
            if fragment:
                if dest.suffix != ".md" or dest.is_dir():
                    continue  # anchors into non-markdown files aren't checked
                if fragment.lower() not in heading_slugs(dest):
                    errors.append(f"{where}: broken anchor {target!r}")
    return errors


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(__file__).parent.parent
    root = root.resolve()
    errors: list[str] = []
    files = markdown_files(root)
    for path in files:
        errors.extend(check_file(path, root))
    for error in errors:
        print(error)
    print(f"check_docs: {len(files)} markdown files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
